"""Tests for the interference graph."""

from repro.ir import IRBuilder, Reg, RegClass
from repro.regalloc import InterferenceGraph, build_interference_graph

from ..helpers import single_loop


class TestGraphStructure:
    def test_edges_are_symmetric(self):
        g = InterferenceGraph()
        a, b = Reg.vint(0), Reg.vint(1)
        g.add_edge(a, b)
        assert g.interferes(a, b) and g.interferes(b, a)
        assert b in g.neighbors(a) and a in g.neighbors(b)

    def test_no_self_edges(self):
        g = InterferenceGraph()
        a = Reg.vint(0)
        g.add_node(a)
        g.add_edge(a, a)
        assert g.degree(a) == 0

    def test_cross_class_edges_rejected(self):
        g = InterferenceGraph()
        a, f = Reg.vint(0), Reg.vfloat(0)
        g.add_edge(a, f)
        assert not g.interferes(a, f)

    def test_duplicate_edges_counted_once(self):
        g = InterferenceGraph()
        a, b = Reg.vint(0), Reg.vint(1)
        g.add_edge(a, b)
        g.add_edge(b, a)
        assert g.n_edges() == 1
        assert g.degree(a) == 1

    def test_merge_unions_neighborhoods(self):
        g = InterferenceGraph()
        a, b, c, d = (Reg.vint(i) for i in range(4))
        g.add_edge(a, c)
        g.add_edge(b, d)
        g.merge(a, b)
        assert b not in g
        assert g.interferes(a, c) and g.interferes(a, d)
        assert g.degree(a) == 2
        assert a in g.neighbors(d)

    def test_merge_drops_edge_between_merged(self):
        g = InterferenceGraph()
        a, b = Reg.vint(0), Reg.vint(1)
        g.add_edge(a, b)
        g.merge(a, b)
        assert not g.interferes(a, b)
        assert g.degree(a) == 0

    def test_remove_node(self):
        g = InterferenceGraph()
        a, b = Reg.vint(0), Reg.vint(1)
        g.add_edge(a, b)
        g.remove_node(a)
        assert a not in g
        assert g.degree(b) == 0


def graph_is_consistent(g: InterferenceGraph) -> None:
    """interferes() and neighbors() must answer from the same data.

    Regression guard for the seed's dual-bookkeeping hazard: the pair
    matrix and the adjacency sets were updated separately in ``merge``
    and could drift.  The bitset rows are a single representation, but
    this pins the contract: membership, neighbor sets, degrees and the
    edge count must all agree, and edges must be symmetric.
    """
    nodes = g.nodes()
    n_edges = 0
    for a in nodes:
        neigh = g.neighbors(a)
        assert g.degree(a) == len(neigh)
        assert a not in neigh
        n_edges += len(neigh)
        for b in nodes:
            assert g.interferes(a, b) == (b in neigh), (a, b)
            assert g.interferes(a, b) == g.interferes(b, a), (a, b)
        for b in neigh:
            assert b in g
            assert a in g.neighbors(b)
    assert g.n_edges() == n_edges // 2


class TestMergeConsistency:
    """merge must keep interferes() and neighbors() consistent."""

    def _triangle_plus_pendant(self):
        g = InterferenceGraph()
        a, b, c, d = (Reg.vint(i) for i in range(4))
        g.add_edge(a, b)
        g.add_edge(b, c)
        g.add_edge(a, c)
        g.add_edge(c, d)
        return g, (a, b, c, d)

    def test_merge_keeps_views_consistent(self):
        g, (a, b, c, d) = self._triangle_plus_pendant()
        g.merge(a, d)           # non-adjacent pair
        graph_is_consistent(g)
        assert g.interferes(a, c) and c in g.neighbors(a)
        assert not g.interferes(a, d) and d not in g
        assert all(d not in g.neighbors(n) for n in g.nodes())

    def test_merge_adjacent_pair_keeps_views_consistent(self):
        g, (a, b, c, d) = self._triangle_plus_pendant()
        g.merge(b, c)           # adjacent pair: their edge must vanish
        graph_is_consistent(g)
        assert not g.interferes(b, c)
        assert g.interferes(b, a) and g.interferes(b, d)

    def test_chained_merges_stay_consistent(self):
        g = InterferenceGraph()
        regs = [Reg.vint(i) for i in range(8)]
        for i, a in enumerate(regs):
            for b in regs[i + 1:i + 3]:
                g.add_edge(a, b)
        g.merge(regs[0], regs[3])
        g.merge(regs[0], regs[5])
        g.merge(regs[1], regs[6])
        graph_is_consistent(g)

    def test_merge_then_remove_stays_consistent(self):
        g, (a, b, c, d) = self._triangle_plus_pendant()
        g.merge(a, d)
        g.remove_node(c)
        graph_is_consistent(g)
        assert not g.interferes(a, c)


class TestBuild:
    def test_simultaneously_live_values_interfere(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        y = b.ldi(2)            # x live here -> x,y interfere
        z = b.add(x, y)
        b.out(z)
        b.ret()
        g = build_interference_graph(b.finish())
        assert g.interferes(x, y)
        assert not g.interferes(x, z)   # x dead once z is defined

    def test_copy_dest_does_not_interfere_with_source(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        y = b.copy(x)
        b.out(b.add(x, y))      # both live after the copy
        b.ret()
        g = build_interference_graph(b.finish())
        assert not g.interferes(x, y)

    def test_copy_dest_interferes_with_others(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        w = b.ldi(9)
        y = b.copy(x)
        b.out(b.add(w, y))
        b.ret()
        g = build_interference_graph(b.finish())
        assert g.interferes(y, w)

    def test_dead_def_interferes_with_live(self):
        """A value defined but never used still clobbers its register."""
        b = IRBuilder("f")
        x = b.ldi(1)
        dead = b.ldi(5)          # never used, but x is live across it
        b.out(x)
        b.ret()
        g = build_interference_graph(b.finish())
        assert g.interferes(x, dead)

    def test_loop_variable_interference(self):
        fn = single_loop()
        g = build_interference_graph(fn)
        # the bound n and the induction variable are both live in the loop
        param = fn.entry.instructions[0].dest
        iv = fn.block("head").instructions[0].srcs[0]
        assert g.interferes(param, iv)

    def test_int_and_float_never_interfere(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        f = b.ldf(2.0)
        b.out(b.add(x, x))
        b.out(f)
        b.ret()
        g = build_interference_graph(b.finish())
        assert not g.interferes(x, f)
