"""Tests for aggressive and conservative coalescing."""

from repro.ir import (Instruction, IRBuilder, Opcode, Reg, function_to_text,
                      parse_function)
from repro.machine import machine_with
from repro.regalloc import (build_coalesce_loop, build_interference_graph,
                            coalesce_pass)
from repro.interp import run_function


def graph_for(fn):
    return build_interference_graph(fn)


class TestAggressive:
    def test_noninterfering_copy_coalesced(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        y = b.copy(x)
        b.out(y)                      # x dead after the copy
        b.ret()
        fn = b.finish()
        g = graph_for(fn)
        n = coalesce_pass(fn, g, machine_with(8), splits=False)
        assert n == 1
        assert not any(i.is_copy for _b, i in fn.instructions())

    def test_interfering_copy_kept(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        y = b.copy(x)
        z = b.addi(y, 1)              # redefine-ish: make both live
        b.out(b.add(x, z))
        b.out(y)
        b.ret()
        fn = b.finish()
        # y and x: the copy exempts them; but force interference by
        # making y live across a redefinition of x? x has a single def;
        # instead check semantics are preserved whatever happens
        expected = run_function(fn.clone()).output
        g = graph_for(fn)
        coalesce_pass(fn, g, machine_with(8), splits=False)
        assert run_function(fn).output == expected

    def test_copy_chain_collapses(self):
        b = IRBuilder("f")
        x = b.ldi(3)
        y = b.copy(x)
        z = b.copy(y)
        b.out(z)
        b.ret()
        fn = b.finish()
        g = graph_for(fn)
        n = coalesce_pass(fn, g, machine_with(8), splits=False)
        assert n == 2
        assert run_function(fn).output == [3]

    def test_splits_not_touched_by_aggressive_pass(self):
        text = """proc f 0
entry:
    ldi r0 1
    split r1 r0
    out r1
    ret
"""
        fn = parse_function(text)
        g = graph_for(fn)
        n = coalesce_pass(fn, g, machine_with(8), splits=False)
        assert n == 0
        assert any(i.is_split for _b, i in fn.instructions())


class TestConservative:
    def test_low_pressure_split_coalesced(self):
        text = """proc f 0
entry:
    ldi r0 1
    split r1 r0
    out r1
    ret
"""
        fn = parse_function(text)
        g = graph_for(fn)
        n = coalesce_pass(fn, g, machine_with(4), splits=True)
        assert n == 1
        assert not any(i.is_split for _b, i in fn.instructions())

    def test_high_pressure_split_kept(self):
        """The combined node would have k significant-degree neighbors."""
        b = IRBuilder("f")
        # build k=2 pressure: two long-lived values overlapping the split
        x = b.ldi(1)
        a = b.ldi(10)
        c = b.ldi(20)
        y_inst = Instruction(Opcode.SPLIT, dests=(b.function.new_reg(
            x.rclass),), srcs=(x,))
        b.current.append(y_inst)
        y = y_inst.dest
        # keep a and c live across everything and interfering heavily
        b.out(b.add(a, c))
        b.out(b.add(a, y))
        b.out(b.add(c, y))
        b.out(b.add(a, c))
        b.ret()
        fn = b.finish()
        g = graph_for(fn)
        n = coalesce_pass(fn, g, machine_with(2), splits=True)
        # a, c both have degree >= 2 and neighbor the merged node: the
        # conservative test must reject the combine at k=2
        assert n == 0
        assert any(i.is_split for _b, i in fn.instructions())

    def test_conservative_criterion_never_causes_spill(self):
        """After conservative coalescing the graph still k-simplifies for
        every node the combine produced (spot check via full allocation)."""
        from repro.regalloc import allocate
        from repro.remat import RenumberMode
        from repro.benchsuite.figures import figure1_pressured
        fn = figure1_pressured()
        res = allocate(fn, machine=machine_with(4, 2),
                       mode=RenumberMode.REMAT)
        expected = run_function(fn, args=[9]).output
        assert run_function(res.function, args=[9]).output == expected


class TestBuildCoalesceLoop:
    def test_loop_reaches_fixpoint(self):
        b = IRBuilder("f")
        x = b.ldi(3)
        y = b.copy(x)
        z = b.copy(y)
        w = b.copy(z)
        b.out(w)
        b.ret()
        fn = b.finish()
        graph, stats = build_coalesce_loop(
            fn, machine_with(8), build_interference_graph)
        assert stats.copies_removed == 3
        assert not any(i.is_copy for _b, i in fn.instructions())

    def test_semantics_preserved(self):
        from ..helpers import if_in_loop
        fn = if_in_loop()
        expected = run_function(fn.clone(), args=[7]).output
        build_coalesce_loop(fn, machine_with(8), build_interference_graph)
        assert run_function(fn, args=[7]).output == expected
