"""Incremental analysis maintenance vs. from-scratch recomputation.

The ISSUE 6 acceptance property: across random CFGs and random
spill-insertion deltas, the patched liveness bitsets
(:meth:`LivenessInfo.apply_delta`) and the patched interference
adjacency (:meth:`InterferenceGraph.refresh_after_spill`,
:meth:`try_refresh_after_coalesce`) are bit-for-bit identical to a
from-scratch recomputation over the rewritten code.  Deltas are
produced by the *real* spill-code rewriter — either with the
allocator's own spill choices or with a random subset of ranges — so
the properties cover exactly the edits the allocator performs.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import compute_liveness, compute_liveness_sparse, \
    diff_liveness
from repro.benchsuite import GeneratorConfig, random_program
from repro.machine import machine_with
from repro.passes import AnalysisManager
from repro.regalloc import build_interference_graph, run_renumber
from repro.regalloc.coalesce import build_coalesce_loop
from repro.regalloc.interference import diff_graphs
from repro.regalloc.select import find_partners, select
from repro.regalloc.simplify import simplify
from repro.regalloc.spillcode import insert_spill_code
from repro.regalloc.spillcost import compute_spill_costs
from repro.remat import RenumberMode

SHAPES = GeneratorConfig(n_vars=6, max_depth=3, max_stmts=5)
#: tight register files so the allocator's own choices actually spill
MACHINE = machine_with(3, 2)

common = settings(max_examples=60, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


def _prepared(seed):
    fn = random_program(seed, SHAPES)
    fn.remove_unreachable_blocks()
    fn.split_critical_edges()
    run_renumber(fn, RenumberMode.REMAT)
    return fn


def _allocator_spills(fn, graph, costs):
    order = simplify(graph, MACHINE, costs)
    chosen = select(graph, order, MACHINE, partners=find_partners(fn))
    chosen.spilled.extend(order.pessimistic_spills)
    return chosen.spilled


def _random_spills(fn, graph, costs, rng):
    nodes = [n for n in graph.nodes() if not n.physical]
    if not nodes:
        return []
    return rng.sample(nodes, rng.randint(1, max(1, len(nodes) // 3)))


def _spill_fixture(fn, pick):
    """One real first round on *fn* in place: build-coalesce (with its
    incremental patches self-verified), then spill the ranges chosen by
    *pick* through the real rewriter.  Returns the post-coalesce graph,
    the pre-spill liveness, and the delta — or ``None`` if *pick* chose
    nothing."""
    am = AnalysisManager(fn)
    liveness = am.liveness()
    loops = am.loops()
    graph, _ = build_coalesce_loop(fn, MACHINE, build_interference_graph,
                                   liveness=liveness,
                                   verify_incremental=True)
    costs = compute_spill_costs(fn, loops, MACHINE)
    spilled = pick(fn, graph, costs)
    if not spilled:
        return None
    pristine = liveness.clone()
    stats = insert_spill_code(fn, spilled, costs)
    assert stats.delta is not None
    return graph, pristine, stats.delta


def assert_patched_analyses_exact(fn, graph, pristine, delta):
    patched = pristine.clone()
    update = patched.apply_delta(delta)
    assert update.blocks_reanalyzed <= update.blocks_total

    # bit-for-bit against a recompute over the same (shared) index
    fresh = compute_liveness(fn, index=patched.index)
    for label in fn.reverse_postorder():
        assert patched.use_bits(label) == fresh.use_bits(label), label
        assert patched.def_bits(label) == fresh.def_bits(label), label
        assert patched.live_in_bits(label) == fresh.live_in_bits(label), label
        assert patched.live_out_bits(label) == fresh.live_out_bits(label), \
            label
    # and set-level against an independently indexed recompute
    assert not diff_liveness(patched, compute_liveness(fn))

    patched_graph = graph.clone()
    patched_graph.refresh_after_spill(fn, patched, delta)
    fresh_graph = build_interference_graph(fn, patched)
    assert not diff_graphs(patched_graph, fresh_graph)


@common
@given(seed=st.integers(0, 10_000))
def test_allocator_spill_delta_patches_exactly(seed):
    """The allocator's own spill choices: patched liveness and graph
    equal from-scratch recomputation."""
    fn = _prepared(seed)
    fixture = _spill_fixture(fn, _allocator_spills)
    if fixture is None:
        return  # ample registers for this shape: no delta to check
    assert_patched_analyses_exact(fn, *fixture)


@common
@given(seed=st.integers(0, 10_000), spill_seed=st.integers(0, 1_000))
def test_random_spill_delta_patches_exactly(seed, spill_seed):
    """Random spill subsets through the real rewriter: the exactness
    argument does not depend on *which* ranges spill."""
    fn = _prepared(seed)
    rng = random.Random(spill_seed)
    fixture = _spill_fixture(
        fn, lambda f, g, c: _random_spills(f, g, c, rng))
    if fixture is None:
        return
    assert_patched_analyses_exact(fn, *fixture)


def test_incremental_sweep_100_functions():
    """The acceptance sweep: 100+ random CFGs, each with the allocator's
    spill delta and a random one, patched analyses identical to
    from-scratch recomputation."""
    checked = 0
    for seed in range(120):
        for pick in (_allocator_spills,
                     lambda f, g, c, r=random.Random(seed):
                         _random_spills(f, g, c, r)):
            fn = _prepared(seed)
            fixture = _spill_fixture(fn, pick)
            if fixture is None:
                continue
            assert_patched_analyses_exact(fn, *fixture)
            checked += 1
    assert checked >= 100


@common
@given(seed=st.integers(0, 10_000))
def test_coalesce_patches_match_rebuilds(seed):
    """The within-round graph patches equal full rebuilds on every
    coalesce pass (the loop's own verify mode raises on any diff), and
    the loop's final graph equals a fresh build over the final code."""
    fn = _prepared(seed)
    liveness = compute_liveness(fn)
    graph, _ = build_coalesce_loop(fn, MACHINE, build_interference_graph,
                                   liveness=liveness,
                                   verify_incremental=True)
    assert not diff_graphs(graph, build_interference_graph(fn, liveness))


@common
@given(seed=st.integers(0, 10_000))
def test_sparse_liveness_matches_dense(seed):
    """The Tavares-style sparse construction computes the same fixed
    point as the dense worklist, bit for bit, pre- and post-renumber."""
    for fn in (random_program(seed, SHAPES), _prepared(seed)):
        dense = compute_liveness(fn)
        sparse = compute_liveness_sparse(fn, index=dense.index)
        for label in fn.reverse_postorder():
            assert sparse.live_in_bits(label) == dense.live_in_bits(label)
            assert sparse.live_out_bits(label) == dense.live_out_bits(label)
