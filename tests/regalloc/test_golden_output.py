"""Golden allocated output: the pass-pipeline refactor changed nothing.

The fixtures are the exact ``repro allocate`` output of the pre-refactor
allocator on fehl at 8 int + 8 float registers (both the paper's *Old*
Chaitin-style mode and the *New* rematerializing mode — a multi-round,
spill-heavy configuration).  Byte-identity here pins the refactor's
prime directive: moving every analysis behind the
:class:`~repro.passes.AnalysisManager` altered no allocation decision.

Regenerate (only after an *intentional* allocator change, with a
``CACHE_VERSION`` bump) via::

    PYTHONPATH=src python -m repro allocate <fehl.il> --k 8 --mode MODE
"""

import pathlib

import pytest

from repro.benchsuite import KERNELS_BY_NAME
from repro.ir import function_to_text
from repro.machine import machine_with
from repro.regalloc import allocate
from repro.remat import RenumberMode

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


@pytest.mark.parametrize("mode, fixture", [
    (RenumberMode.CHAITIN, "fehl_8p8_chaitin.il"),
    (RenumberMode.REMAT, "fehl_8p8_remat.il"),
])
def test_fehl_8p8_matches_pre_refactor_output(mode, fixture):
    fn = KERNELS_BY_NAME["fehl"].compile()
    result = allocate(fn, machine=machine_with(8, 8), mode=mode)
    expected = (FIXTURES / fixture).read_text()
    assert function_to_text(result.function) == expected
