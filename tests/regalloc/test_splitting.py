"""Tests for the Section 6 splitting schemes."""

import pytest

from repro.benchsuite import KERNELS_BY_NAME
from repro.interp import run_function
from repro.ir import Opcode
from repro.machine import machine_with
from repro.regalloc import allocate
from repro.regalloc.splitting import (SCHEMES, split_around_all_loops,
                                      split_around_outer_loops,
                                      split_around_unused_loops)
from repro.analysis import compute_dominance, compute_loops

from ..helpers import figure1_fragment, nested_loops


def prepared(fn):
    fn.remove_unreachable_blocks()
    fn.split_critical_edges()
    dom = compute_dominance(fn)
    loops = compute_loops(fn, dom)
    return fn, dom, loops


def count_splits(fn):
    return sum(1 for _b, i in fn.instructions() if i.is_split)


class TestPreSplitHooks:
    def test_around_all_loops_inserts_splits(self):
        fn, dom, loops = prepared(nested_loops())
        split_around_all_loops(fn, dom, loops)
        assert count_splits(fn) > 0

    def test_outer_only_inserts_fewer(self):
        fn_all, dom, loops = prepared(nested_loops())
        split_around_all_loops(fn_all, dom, loops)
        fn_outer, dom2, loops2 = prepared(nested_loops())
        split_around_outer_loops(fn_outer, dom2, loops2)
        assert count_splits(fn_outer) <= count_splits(fn_all)

    def test_unused_loops_targets_live_through_regs(self):
        # in figure1, y is live through loop 2 but unreferenced there
        fn, dom, loops = prepared(figure1_fragment())
        split_around_unused_loops(fn, dom, loops)
        assert count_splits(fn) >= 1

    def test_hooks_preserve_semantics_pre_allocation(self):
        for hook in (split_around_all_loops, split_around_outer_loops,
                     split_around_unused_loops):
            fn, dom, loops = prepared(nested_loops())
            expected = run_function(nested_loops(), args=[5]).output
            hook(fn, dom, loops)
            assert run_function(fn, args=[5]).output == expected, hook


class TestSchemeRegistry:
    def test_all_five_paper_schemes_present(self):
        assert {"around-all-loops", "around-outer-loops",
                "around-unused-loops", "at-phis",
                "forward-reverse-df"} <= set(SCHEMES)

    def test_baselines_present(self):
        assert "chaitin" in SCHEMES and "remat" in SCHEMES

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_scheme_preserves_kernel_semantics(self, name):
        scheme = SCHEMES[name]
        kernel = KERNELS_BY_NAME["repvid"]
        expected = run_function(kernel.compile(),
                                args=list(kernel.args)).output
        result = allocate(kernel.compile(), machine=machine_with(8, 8),
                          mode=scheme.mode, pre_split=scheme.pre_split)
        run = run_function(result.function, args=list(kernel.args))
        assert run.output == expected

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_scheme_on_pressured_figure1(self, name):
        from repro.benchsuite import figure1_pressured
        scheme = SCHEMES[name]
        fn = figure1_pressured()
        expected = run_function(fn.clone(), args=[9]).output
        result = allocate(fn, machine=machine_with(4, 2),
                          mode=scheme.mode, pre_split=scheme.pre_split)
        assert run_function(result.function, args=[9]).output == expected
