"""Tests for the optimistic simplify and biased select phases."""

import math

from repro.ir import Reg
from repro.machine import machine_with
from repro.regalloc import (InterferenceGraph, SpillCosts, select, simplify)
from repro.regalloc.simplify import SimplifyResult


def graph_of(edges, n_nodes):
    g = InterferenceGraph([Reg.vint(i) for i in range(n_nodes)])
    for a, b in edges:
        g.add_edge(Reg.vint(a), Reg.vint(b))
    return g


def costs_of(values: dict[int, float]) -> SpillCosts:
    c = SpillCosts()
    for i, v in values.items():
        c.cost[Reg.vint(i)] = v
    return c


class TestSimplify:
    def test_all_nodes_end_on_stack(self):
        g = graph_of([(0, 1), (1, 2), (2, 0)], 4)
        result = simplify(g, machine_with(2), costs_of({i: 1.0
                                                        for i in range(4)}))
        assert sorted(r.index for r in result.stack) == [0, 1, 2, 3]

    def test_trivial_graph_has_no_candidates(self):
        g = graph_of([(0, 1)], 2)
        result = simplify(g, machine_with(4), costs_of({0: 1.0, 1: 1.0}))
        assert result.candidates == set()

    def test_clique_forces_candidates(self):
        # K4 with k=2: at least two nodes must be pushed as candidates
        edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        g = graph_of(edges, 4)
        result = simplify(g, machine_with(2),
                          costs_of({i: float(i + 1) for i in range(4)}))
        assert len(result.candidates) >= 2

    def test_candidate_is_min_cost_over_degree(self):
        # K3, k=2: first candidate should be the cheapest node (equal
        # degrees)
        edges = [(0, 1), (1, 2), (0, 2)]
        g = graph_of(edges, 3)
        result = simplify(g, machine_with(2),
                          costs_of({0: 9.0, 1: 1.0, 2: 9.0}))
        assert Reg.vint(1) in result.candidates

    def test_infinite_cost_nodes_avoided(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        g = graph_of(edges, 3)
        result = simplify(g, machine_with(2),
                          costs_of({0: math.inf, 1: math.inf, 2: 5.0}))
        assert Reg.vint(2) in result.candidates

    def test_diamond_simplifies_without_candidates_at_k3(self):
        # C4 (cycle): max degree 2 < 3
        g = graph_of([(0, 1), (1, 2), (2, 3), (3, 0)], 4)
        result = simplify(g, machine_with(3), costs_of({}))
        assert result.candidates == set()


class TestSelect:
    def run_select(self, g, k, stack_nodes, partners=None):
        order = SimplifyResult(stack=[Reg.vint(i) for i in stack_nodes],
                               candidates=set())
        return select(g, order, machine_with(k), partners=partners)

    def test_neighbors_get_distinct_colors(self):
        g = graph_of([(0, 1), (1, 2), (2, 0)], 3)
        result = self.run_select(g, 3, [0, 1, 2])
        colors = result.coloring
        assert len(colors) == 3
        assert colors[Reg.vint(0)] != colors[Reg.vint(1)]
        assert colors[Reg.vint(1)] != colors[Reg.vint(2)]

    def test_uncolorable_node_is_spilled(self):
        edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        g = graph_of(edges, 4)
        result = self.run_select(g, 3, [3, 2, 1, 0])
        assert len(result.spilled) == 1
        assert len(result.coloring) == 3

    def test_optimism_colors_high_degree_nodes(self):
        """A high-degree node whose neighbors share colors still gets one
        (the optimistic win over Chaitin's pessimistic spilling)."""
        # star: center 0 adjacent to 1..4, leaves independent
        g = graph_of([(0, i) for i in range(1, 5)], 5)
        # push center first (popped last): leaves colored first, but they
        # can all share one color, leaving one for the center at k=2
        result = self.run_select(g, 2, [0, 1, 2, 3, 4])
        assert not result.spilled

    def test_biased_coloring_matches_partners(self):
        # 0 and 1 are partners and do not interfere; 2 forces 0 away from
        # color 0 so an unbiased select would give 1 color 0
        g = graph_of([(0, 2)], 3)
        partners = {Reg.vint(0): {Reg.vint(1)}, Reg.vint(1): {Reg.vint(0)}}
        result = self.run_select(g, 2, [1, 2, 0], partners=partners)
        # pop order: 0 (gets color != color(2)), then 2, then 1 (biased to
        # 0's color)
        assert result.coloring[Reg.vint(1)] == result.coloring[Reg.vint(0)]

    def test_lookahead_prefers_color_open_for_partner(self):
        """Choosing for l_i first: lookahead avoids the color its partner
        cannot take."""
        # partner 1 interferes with 2 (already colored 0); node 0 is free
        g = graph_of([(1, 2)], 3)
        partners = {Reg.vint(0): {Reg.vint(1)}, Reg.vint(1): {Reg.vint(0)}}
        order = SimplifyResult(
            stack=[Reg.vint(1), Reg.vint(0), Reg.vint(2)], candidates=set())
        result = select(g, order, machine_with(2), partners=partners)
        # 2 pops first (color 0); then 0: both colors free, lookahead
        # should pick color 1 because partner 1 cannot take color 0
        assert result.coloring[Reg.vint(2)] == 0
        assert result.coloring[Reg.vint(0)] == 1
        assert result.coloring[Reg.vint(1)] == 1

    def test_without_lookahead_first_fit(self):
        g = graph_of([(1, 2)], 3)
        partners = {Reg.vint(0): {Reg.vint(1)}, Reg.vint(1): {Reg.vint(0)}}
        order = SimplifyResult(
            stack=[Reg.vint(1), Reg.vint(0), Reg.vint(2)], candidates=set())
        result = select(g, order, machine_with(2), partners=partners,
                        lookahead=False)
        # first-fit gives node 0 color 0; partner then cannot match
        assert result.coloring[Reg.vint(0)] == 0
        assert result.coloring[Reg.vint(1)] == 1
