"""The pluggable allocator strategies: registry, argument-validation
ordering, and the SSA spill-everywhere strategy end to end.

The iterated strategy's behavior is pinned elsewhere (its whole test
suite plus the 432-config byte-identity sweep); this file covers what
the refactor added — the strategy seam itself and the second strategy
behind it.
"""

import pytest

from repro.benchsuite import KERNELS_BY_NAME
from repro.interp import run_function
from repro.ir import Opcode, verify_function
from repro.machine import huge_machine, machine_with, tiny_machine
from repro.obs import Tracer
from repro.regalloc import (ALLOCATOR_NAMES, AllocationError, SSAStrategy,
                            allocate, make_strategy)
from repro.remat import RenumberMode

from ..helpers import ALL_SHAPES, nested_loops


class TestStrategyRegistry:
    def test_names(self):
        assert ALLOCATOR_NAMES == ("iterated", "ssa")

    def test_make_strategy_rejects_unknown(self):
        with pytest.raises(ValueError, match="iterated"):
            make_strategy("linear-scan")

    def test_result_records_strategy(self):
        fn = nested_loops()
        assert allocate(fn, machine=huge_machine()).allocator == "iterated"
        assert allocate(fn, machine=huge_machine(),
                        allocator="ssa").allocator == "ssa"


class TestValidationOrdering:
    """Bad arguments must be rejected before the driver mutates the
    input — under ``clone=False`` a late raise used to leave the caller
    holding a half-normalized CFG (unreachable blocks removed, critical
    edges split)."""

    @pytest.mark.parametrize("kwargs", [
        {"liveness_mode": "densest"},
        {"mode": "remat"},          # a string, not a RenumberMode
        {"allocator": "linear-scan"},
    ])
    def test_bad_argument_leaves_input_untouched(self, kwargs):
        fn = nested_loops()
        before = str(fn)
        with pytest.raises((ValueError, TypeError)):
            allocate(fn, machine=tiny_machine(4, 4), clone=False, **kwargs)
        assert str(fn) == before

    def test_good_arguments_still_mutate_in_place(self):
        fn = nested_loops()
        result = allocate(fn, machine=tiny_machine(4, 4), clone=False)
        assert result.function is fn


class TestSSAStrategy:
    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_semantic_equivalence_under_pressure(self, shape):
        fn = shape()
        expected = run_function(fn.clone(), args=[6]).output
        result = allocate(fn, machine=tiny_machine(4, 4), allocator="ssa")
        assert run_function(result.function, args=[6]).output == expected

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_output_is_physical_and_verified(self, shape):
        result = allocate(shape(), machine=machine_with(6, 6),
                          allocator="ssa", verify_rounds=True)
        verify_function(result.function, require_physical=True,
                        max_int_reg=6, max_float_reg=6)
        for _blk, inst in result.function.instructions():
            assert inst.opcode is not Opcode.PHI

    def test_huge_machine_never_spills(self):
        for shape in ALL_SHAPES:
            result = allocate(shape(), machine=huge_machine(),
                              allocator="ssa")
            assert result.stats.n_spilled_ranges == 0
            assert result.rounds == 1

    def test_deterministic(self):
        fn = KERNELS_BY_NAME["fehl"].compile()
        a = allocate(fn, machine=machine_with(6, 6), allocator="ssa")
        b = allocate(fn, machine=machine_with(6, 6), allocator="ssa")
        assert str(a.function) == str(b.function)
        assert a.stats == b.stats

    def test_too_small_file_raises(self):
        with pytest.raises(AllocationError):
            allocate(nested_loops(), machine=machine_with(1, 1),
                     allocator="ssa", max_rounds=6)

    def test_mode_axis_is_inert(self):
        """The strategy always splits maximally; the requested renumber
        mode must not change its output."""
        fn = KERNELS_BY_NAME["zeroin"].compile()
        outs = {str(allocate(fn, machine=machine_with(6, 6),
                             allocator="ssa", mode=mode).function)
                for mode in RenumberMode}
        assert len(outs) == 1

    def test_spill_events_reconcile_with_stats(self):
        """Every SSA spill decision is evented, and the event count is
        exactly ``n_spilled_ranges`` (the reconciliation invariant the
        iterated strategy's spill_decision events already obey)."""
        fn = KERNELS_BY_NAME["fehl"].compile()
        tracer = Tracer(capture_events=True)
        result = allocate(fn, machine=machine_with(6, 6), allocator="ssa",
                          tracer=tracer)
        assert result.stats.n_spilled_ranges > 0
        events = [e for s in result.trace.walk() for e in s.events
                  if e.kind == "ssa_spill_decision"]
        assert len(events) == result.stats.n_spilled_ranges
        assert {e.chosen_because for e in events} <= \
            {"over-pressure", "uncolorable"}

    def test_pressure_events_cover_every_block(self):
        fn = KERNELS_BY_NAME["zeroin"].compile()
        tracer = Tracer(capture_events=True)
        result = allocate(fn, machine=machine_with(6, 6), allocator="ssa",
                          tracer=tracer)
        pressures = [e for s in result.trace.walk() for e in s.events
                     if e.kind == "maxlive_pressure"]
        labels = {e.block for e in pressures}
        assert {blk.label for blk in result.function.blocks} <= labels

    def test_span_skeleton_matches_iterated(self):
        """RoundTimes / Table 2 are views over the span tree; both
        strategies must emit the same phase skeleton."""
        fn = KERNELS_BY_NAME["fehl"].compile()
        tracer = Tracer(capture_events=True)
        allocate(fn, machine=machine_with(6, 6), allocator="ssa",
                 tracer=tracer)
        root = tracer.root
        rounds = [s for s in root.children if s.name == "round"]
        assert rounds
        first = {child.name for child in rounds[0].children}
        assert {"renumber", "build", "costs", "color", "spill"} <= first

    def test_strategy_class_is_exported(self):
        assert make_strategy("ssa").__class__ is SSAStrategy
