"""Tests for spill-slot packing."""

import pytest

from repro.benchsuite import KERNELS_BY_NAME, random_program
from repro.interp import run_function
from repro.ir import Opcode, parse_function
from repro.machine import machine_with
from repro.regalloc import allocate, pack_spill_slots
from repro.remat import RenumberMode


class TestPacking:
    def test_disjoint_slots_share_a_cell(self):
        text = """proc f 0
entry:
    ldi r0 1
    spst r0 0
    spld r1 0
    out r1
    ldi r0 2
    spst r0 1
    spld r1 1
    out r1
    ret
"""
        fn = parse_function(text)
        fn.n_spill_slots = 2
        result = pack_spill_slots(fn)
        assert result.slots_before == 2
        assert result.slots_after == 1
        assert run_function(fn).output == [1, 2]

    def test_overlapping_slots_stay_apart(self):
        text = """proc f 0
entry:
    ldi r0 1
    spst r0 0
    ldi r0 2
    spst r0 1
    spld r1 0
    spld r2 1
    out r1
    out r2
    ret
"""
        fn = parse_function(text)
        fn.n_spill_slots = 2
        result = pack_spill_slots(fn)
        assert result.slots_after == 2
        assert run_function(fn).output == [1, 2]

    def test_liveness_across_blocks(self):
        """A slot stored in one block and loaded in another stays live
        across the region in between."""
        text = """proc f 0
entry:
    ldi r0 7
    spst r0 0
    jmp mid
mid:
    ldi r0 8
    spst r0 1
    spld r1 1
    out r1
    jmp last
last:
    spld r1 0
    out r1
    ret
"""
        fn = parse_function(text)
        fn.n_spill_slots = 2
        result = pack_spill_slots(fn)
        # slot 1's lifetime sits inside slot 0's: they interfere
        assert result.slots_after == 2
        assert run_function(fn).output == [8, 7]

    def test_mixed_class_slots(self):
        text = """proc f 0
entry:
    ldf f0 1.5
    fspst f0 0
    fspld f1 0
    fout f1
    ldi r0 3
    spst r0 1
    spld r1 1
    out r1
    ret
"""
        fn = parse_function(text)
        fn.n_spill_slots = 2
        result = pack_spill_slots(fn)
        assert result.slots_after == 1   # disjoint lifetimes may share
        assert run_function(fn).output == [1.5, 3]


class TestPackedAllocations:
    @pytest.mark.parametrize("name", ["adapt", "ptrsum", "basewalk"])
    def test_packing_preserves_kernels(self, name):
        kernel = KERNELS_BY_NAME[name]
        expected = run_function(kernel.compile(),
                                args=list(kernel.args)).output
        result = allocate(kernel.compile(), machine=machine_with(8, 8),
                          mode=RenumberMode.REMAT)
        packing = pack_spill_slots(result.function)
        assert packing.slots_after <= packing.slots_before
        run = run_function(result.function, args=list(kernel.args))
        assert run.output == expected

    @pytest.mark.parametrize("seed", range(8))
    def test_packing_preserves_random_programs(self, seed):
        fn = random_program(seed)
        expected = run_function(fn.clone()).output
        result = allocate(fn, machine=machine_with(4, 4))
        pack_spill_slots(result.function)
        assert run_function(result.function).output == expected

    def test_packing_shrinks_multi_round_frames(self):
        """Kernels that spill over several rounds accumulate slots that
        packing reclaims."""
        kernel = KERNELS_BY_NAME["basewalk"]
        result = allocate(kernel.compile(), machine=machine_with(6, 6),
                          mode=RenumberMode.REMAT)
        packing = pack_spill_slots(result.function)
        assert packing.slots_before >= 2
        assert packing.slots_after < packing.slots_before

    def test_idempotent(self):
        kernel = KERNELS_BY_NAME["adapt"]
        result = allocate(kernel.compile(), machine=machine_with(8, 8))
        first = pack_spill_slots(result.function)
        second = pack_spill_slots(result.function)
        assert second.slots_after == first.slots_after
