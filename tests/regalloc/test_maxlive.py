"""MAXLIVE vs. the brute-force per-point oracle, and the
spill-everywhere invariant it exists to serve.

:func:`repro.regalloc.compute_block_maxlive` walks the dense bitset
liveness once per block; the oracle in ``tests/reference_impl.py``
re-derives every program point's live *set* independently (backward
walk from ``live_out``, plain set counting).  The two must agree on
arbitrary generated control flow — raw, and after the maximal-splitting
renumber the SSA strategy actually feeds it.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import compute_liveness, compute_loops
from repro.benchsuite import GeneratorConfig, random_program
from repro.ir import RegClass
from repro.machine import machine_with
from repro.regalloc import (choose_spill_everywhere, compute_block_maxlive,
                            run_renumber)
from repro.regalloc.spillcost import compute_spill_costs
from repro.remat import RenumberMode

from ..reference_impl import ref_block_maxlive

SHAPES = GeneratorConfig(n_vars=6, max_depth=3, max_stmts=5)

common = settings(max_examples=120, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


def normalized(seed, renumber=False):
    fn = random_program(seed, SHAPES)
    # the same CFG normalization allocate() applies before any analysis
    fn.remove_unreachable_blocks()
    fn.split_critical_edges()
    if renumber:
        run_renumber(fn, RenumberMode.SPLIT_ALL)
    return fn


def assert_maxlive_matches(fn):
    got = compute_block_maxlive(fn, compute_liveness(fn))
    want = ref_block_maxlive(fn)
    assert set(got) == set(want)
    for label in want:
        assert got[label] == want[label], (fn.name, label)


@common
@given(seed=st.integers(0, 10_000))
def test_maxlive_matches_bruteforce(seed):
    assert_maxlive_matches(normalized(seed))


@common
@given(seed=st.integers(0, 10_000))
def test_maxlive_matches_bruteforce_after_split_all(seed):
    """On the SSA strategy's actual input: maximally split ranges."""
    assert_maxlive_matches(normalized(seed, renumber=True))


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_spill_everywhere_lowers_residual_pressure(seed):
    """Every point's pressure, discounting chosen victims, is at most k
    plus the point's own pinned-operand reloads — the bound the chooser
    promises (a point can stay over only via operands of its adjacent
    instruction, which whole-range spilling cannot relieve)."""
    fn = normalized(seed, renumber=True)
    machine = machine_with(3, 3)
    liveness = compute_liveness(fn)
    costs = compute_spill_costs(fn, compute_loops(fn), machine)
    spilled = set(choose_spill_everywhere(fn, liveness, machine, costs))

    live = ref_block_maxlive(fn)  # touch the oracle path for coverage
    assert set(live) == {blk.label for blk in fn.blocks}

    from ..reference_impl import ref_compute_liveness
    ref = ref_compute_liveness(fn)
    for blk in fn.blocks:
        after = set(ref.blocks[blk.label].live_out)
        points = [(None, set(ref.blocks[blk.label].live_in))]
        rev = []
        for inst in reversed(blk.instructions):
            if inst.dests:
                rev.append((inst, set(after) | set(inst.dests)))
            after = (after - set(inst.dests)) | set(inst.srcs)
            rev.append((inst, set(after)))
        points += reversed(rev)
        for inst, point in points:
            pinned = set(inst.regs()) if inst is not None else set()
            for cls in (RegClass.INT, RegClass.FLOAT):
                residual = sum(1 for r in point
                               if r.rclass is cls and r not in spilled)
                slack = sum(1 for r in pinned & spilled
                            if r.rclass is cls)
                assert residual <= machine.k(cls) + slack, \
                    (fn.name, blk.label, cls)
