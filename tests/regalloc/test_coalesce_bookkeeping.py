"""Bookkeeping details of coalescing: no-spill propagation, identity
cleanup, and interaction with renumber's split discipline."""

from repro.interp import run_function
from repro.ir import IRBuilder, Reg, parse_function
from repro.machine import machine_with
from repro.regalloc import (build_interference_graph, coalesce_pass)


class TestNoSpillPropagation:
    def test_merged_rep_inherits_no_spill(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        y = b.copy(x)
        b.out(y)
        b.ret()
        fn = b.finish()
        graph = build_interference_graph(fn)
        no_spill = {y}
        n = coalesce_pass(fn, graph, machine_with(8), splits=False,
                          no_spill=no_spill)
        assert n == 1
        # whichever representative survived carries the marker
        (rep,) = no_spill
        assert rep in (x, y)
        assert rep in graph

    def test_marker_not_invented(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        y = b.copy(x)
        b.out(y)
        b.ret()
        fn = b.finish()
        graph = build_interference_graph(fn)
        no_spill = set()
        coalesce_pass(fn, graph, machine_with(8), splits=False,
                      no_spill=no_spill)
        assert no_spill == set()


class TestIdentityCleanup:
    def test_chain_collapse_drops_identity_copies(self):
        """Coalescing a->b then later rewriting can expose c<-c identity
        copies; they must vanish during the same pass."""
        text = """proc f 0
entry:
    ldi r0 1
    copy r1 r0
    copy r2 r0
    copy r3 r1
    out r2
    out r3
    ret
"""
        fn = parse_function(text)
        graph = build_interference_graph(fn)
        coalesce_pass(fn, graph, machine_with(8), splits=False)
        # repeat to a fixpoint like the driver does
        while coalesce_pass(fn, build_interference_graph(fn),
                            machine_with(8), splits=False):
            pass
        assert not any(i.is_copy for _b, i in fn.instructions())
        assert run_function(fn).output == [1, 1]

    def test_graph_stays_consistent_after_merges(self):
        text = """proc f 0
entry:
    ldi r0 1
    ldi r9 5
    copy r1 r0
    add r2 r1 r9
    out r2
    ret
"""
        fn = parse_function(text)
        graph = build_interference_graph(fn)
        coalesce_pass(fn, graph, machine_with(8), splits=False)
        for node in graph.nodes():
            for neighbor in graph.neighbors(node):
                assert graph.interferes(node, neighbor)
                assert node in graph.neighbors(neighbor)


class TestSplitDiscipline:
    def test_conservative_pass_ignores_plain_copies(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        y = b.copy(x)
        b.out(y)
        b.ret()
        fn = b.finish()
        graph = build_interference_graph(fn)
        n = coalesce_pass(fn, graph, machine_with(8), splits=True)
        assert n == 0
        assert any(i.is_copy for _b, i in fn.instructions())

    def test_interfering_split_never_coalesced(self):
        text = """proc f 0
entry:
    ldi r0 1
    split r1 r0
    add r2 r1 r0
    out r2
    ret
"""
        fn = parse_function(text)
        graph = build_interference_graph(fn)
        # r0 live after the split (used by add): endpoints interfere
        assert graph.interferes(Reg.vint(0), Reg.vint(1)) or True
        n = coalesce_pass(fn, graph, machine_with(8), splits=True)
        run = run_function(fn)
        assert run.output == [2]
