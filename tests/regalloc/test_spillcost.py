"""Tests for spill-cost estimation."""

import math

from repro.analysis import compute_loops
from repro.ir import IRBuilder, Opcode
from repro.machine import standard_machine
from repro.regalloc import compute_spill_costs
from repro.remat import InstTag

from ..helpers import single_loop


def costs_for(fn, no_spill=None):
    return compute_spill_costs(fn, compute_loops(fn), standard_machine(),
                               no_spill=no_spill)


class TestLoopWeighting:
    def test_uses_inside_loops_weigh_10x_per_depth(self):
        fn = single_loop()
        costs = costs_for(fn)
        # the parameter n is never-killed (re-readable from its frame
        # home, cost 2): one use at depth 1 (2*10) minus its deleted def
        # at depth 0 (2*1)
        n = fn.entry.instructions[0].dest
        assert costs.is_remat(n)
        assert costs.cost[n] == 2 * 10 - 2 * 1

    def test_deeper_is_costlier(self):
        b = IRBuilder("f", n_params=1)
        n = b.param(0)
        shallow = b.ldw(b.lsd(0))
        deep = b.ldw(b.lsd(8))
        i = b.function.new_reg(n.rclass)
        b.copy_to(i, b.ldw(b.lsd(16)))
        b.jmp("head")
        b.label("head")
        c = b.cmp_lt(i, n)
        b.cbr(c, "body", "exit")
        b.label("body")
        b.copy_to(i, b.add(i, deep))
        b.jmp("head")
        b.label("exit")
        b.out(b.add(shallow, deep))
        b.out(i)
        b.ret()
        fn = b.finish()
        costs = costs_for(fn)
        assert costs.cost[deep] > costs.cost[shallow]


class TestRematCosts:
    def test_never_killed_single_def_is_remat(self):
        b = IRBuilder("f")
        x = b.lsd(64)
        b.out(b.ldw(x))
        b.ret()
        costs = costs_for(b.finish())
        assert costs.is_remat(x)
        assert costs.remat[x] == InstTag(Opcode.LSD, (64,))

    def test_identical_defs_still_remat(self):
        """Chaitin's criterion: several *identical* never-killed defs."""
        b = IRBuilder("f")
        c = b.ldi(1)
        r = b.function.new_reg(c.rclass)
        b.cbr(c, "a", "z")
        b.label("a")
        b.copy_to(r, b.lsd(64))
        b.jmp("join")
        b.label("z")
        b.copy_to(r, b.lsd(64))
        b.jmp("join")
        b.label("join")
        b.out(b.ldw(r))
        b.ret()
        fn = b.finish()
        # r has two copy defs, so r itself is not remat; but the two lsd
        # temps are
        costs = costs_for(fn)
        lsd_dests = [i.dest for _b, i in fn.instructions()
                     if i.opcode == Opcode.LSD]
        assert all(costs.is_remat(d) for d in lsd_dests)
        assert not costs.is_remat(r)

    def test_mixed_defs_not_remat(self):
        b = IRBuilder("f")
        r = b.function.new_reg(b.ldi(0).rclass)
        c = b.ldi(1)
        b.cbr(c, "a", "z")
        b.label("a")
        b.copy_to(r, b.lsd(64))
        b.jmp("join")
        b.label("z")
        b.copy_to(r, b.lsd(128))
        b.jmp("join")
        b.label("join")
        b.out(b.ldw(r))
        b.ret()
        costs = costs_for(b.finish())
        assert not costs.is_remat(r)

    def test_remat_cost_cheaper_than_memory_cost(self):
        """A never-killed value used in a loop: remat cost 1/use beats
        load cost 2/use + store 2/def."""
        b = IRBuilder("f", n_params=1)
        n = b.param(0)
        base = b.lsd(64)
        i = b.function.new_reg(n.rclass)
        b.copy_to(i, b.ldw(b.lsd(0)))
        b.jmp("head")
        b.label("head")
        c = b.cmp_lt(i, n)
        b.cbr(c, "body", "exit")
        b.label("body")
        b.copy_to(i, b.add(i, b.ldw(base)))
        b.jmp("head")
        b.label("exit")
        b.out(i)
        b.ret()
        fn = b.finish()
        costs = costs_for(fn)
        assert costs.is_remat(base)
        # remat: 1 use at depth 1 (cost 1*10) minus deleted def (1)
        assert costs.cost[base] == 10 - 1
        # if it were a memory spill it would cost 2*10 + 2

    def test_dead_never_killed_value_has_negative_cost(self):
        """A never-killed def with few uses relative to defs is a
        *profitable* spill (negative cost)."""
        b = IRBuilder("f", n_params=1)
        n = b.param(0)
        x = b.function.new_reg(n.rclass)
        b.copy_to(x, b.ldi(5))
        b.jmp("head")
        b.label("head")                      # x redefined at depth 1 ...
        c = b.cmp_lt(b.ldw(b.lsd(0)), n)
        b.cbr(c, "body", "exit")
        b.label("body")
        b.copy_to(x, b.ldi(5))
        b.jmp("head")
        b.label("exit")
        b.out(x)                             # ... but used once at depth 0
        b.ret()
        fn = b.finish()
        # after REMAT renumbering the identical-tag copies die and x's web
        # has two `ldi 5` defs (depths 0 and 1) but a single shallow use:
        # cost = 1*1 - 1*(1 + 10) < 0, a profitable spill
        from repro.regalloc import run_renumber
        from repro.remat import RenumberMode
        fn.split_critical_edges()
        run_renumber(fn, RenumberMode.REMAT)
        costs = costs_for(fn)
        ldi_dests = [i.dest for _b, i in fn.instructions()
                     if i.opcode == Opcode.LDI and i.imms == (5,)]
        assert ldi_dests
        web = ldi_dests[0]
        assert costs.is_remat(web)
        assert costs.cost[web] < 0


class TestNoSpill:
    def test_no_spill_regs_get_infinite_cost(self):
        fn = single_loop()
        n = fn.entry.instructions[0].dest
        costs = costs_for(fn, no_spill={n})
        assert math.isinf(costs.cost[n])
