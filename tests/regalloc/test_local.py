"""Tests for the local (per-block, write-through) allocator baseline."""

import pytest

from repro.benchsuite import ALL_KERNELS, KERNELS_BY_NAME, random_program
from repro.interp import run_function
from repro.ir import CountClass, Opcode, parse_function, verify_function
from repro.machine import machine_with, standard_machine
from repro.regalloc import (LocalAllocationError, allocate, allocate_local)


class TestBasics:
    def test_straight_line(self):
        text = """proc f 0
entry:
    ldi r0 6
    ldi r1 7
    mul r2 r0 r1
    out r2
    ret
"""
        fn = parse_function(text)
        result = allocate_local(fn, machine=machine_with(4, 4))
        assert run_function(result.function).output == [42]
        verify_function(result.function, require_physical=True,
                        max_int_reg=4, max_float_reg=4)

    def test_every_def_is_written_through(self):
        text = "proc f 0\nentry:\n    ldi r0 1\n    out r0\n    ret\n"
        fn = parse_function(text)
        result = allocate_local(fn)
        ops = [i.opcode for i in result.function.entry.instructions]
        assert Opcode.SPST in ops
        assert result.n_stores == 1

    def test_cross_block_values_go_through_memory(self):
        text = """proc f 0
entry:
    ldi r0 9
    jmp next
next:
    out r0
    ret
"""
        fn = parse_function(text)
        result = allocate_local(fn)
        assert result.n_reloads >= 1
        assert run_function(result.function).output == [9]

    def test_dest_equals_src(self):
        text = """proc f 0
entry:
    ldi r0 5
    add r0 r0 r0
    out r0
    ret
"""
        fn = parse_function(text)
        result = allocate_local(fn, machine=machine_with(3, 2))
        assert run_function(result.function).output == [10]

    def test_eviction_under_pressure(self):
        """Five simultaneously-needed values on a 3-register file force
        LRU evictions; write-through keeps everything correct."""
        text = """proc f 0
entry:
    ldi r0 1
    ldi r1 2
    ldi r2 3
    ldi r3 4
    ldi r4 5
    add r5 r0 r1
    add r6 r2 r3
    add r7 r5 r6
    add r8 r7 r4
    out r8
    ret
"""
        fn = parse_function(text)
        result = allocate_local(fn, machine=machine_with(3, 2))
        assert run_function(result.function).output == [15]
        assert result.n_reloads > 0

    def test_too_small_file_rejected(self):
        fn = parse_function("proc f 0\nentry:\n    ret\n")
        with pytest.raises(LocalAllocationError):
            allocate_local(fn, machine=machine_with(2, 2))


class TestAgainstGlobal:
    @pytest.mark.parametrize("kernel", ALL_KERNELS[:10],
                             ids=lambda k: k.name)
    def test_kernels_preserved(self, kernel):
        expected = run_function(kernel.compile(),
                                args=list(kernel.args)).output
        result = allocate_local(kernel.compile())
        run = run_function(result.function, args=list(kernel.args),
                           max_steps=5_000_000)
        assert run.output == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_random_programs_preserved(self, seed):
        fn = random_program(seed + 700)
        expected = run_function(fn.clone()).output
        result = allocate_local(fn, machine=machine_with(4, 4))
        assert run_function(result.function,
                            max_steps=5_000_000).output == expected

    def test_local_code_is_slower_but_allocation_faster(self):
        """The paper's Section 5.4 closing remark, quantified."""
        kernel = KERNELS_BY_NAME["sgemm"]
        machine = standard_machine()
        local = allocate_local(kernel.compile(), machine=machine)
        global_ = allocate(kernel.compile(), machine=machine)
        run_l = run_function(local.function, args=list(kernel.args),
                             max_steps=5_000_000)
        run_g = run_function(global_.function, args=list(kernel.args))
        assert machine.cycles(run_l.counts) > machine.cycles(run_g.counts)
        # memory traffic dominates local code
        assert (run_l.count(CountClass.LOAD)
                > 3 * run_g.count(CountClass.LOAD))
