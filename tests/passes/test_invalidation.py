"""The invalidation contract, property-tested on random CFGs.

Each test mutates a generated function the way a real pass does, tells
the manager what that pass declares it preserves, and then checks every
analysis the manager still serves byte-equal against a fresh recompute
(the set-based oracles in ``tests/reference_impl.py`` / the naive
algorithms in ``tests/helpers.py``).  This is what makes the declared
:class:`~repro.passes.PreservedAnalyses` contracts trustworthy — in
particular the pre-split claim that inserting ``split r r`` where ``r``
is live preserves liveness, and the coalescer's claim that
:meth:`~repro.analysis.LivenessInfo.rename` maintains the cached fixed
point.
"""

import random

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.analysis import compute_dominance, compute_liveness
from repro.benchsuite import GeneratorConfig, random_program
from repro.passes import (DOMINANCE, LIVENESS, LOOPS, AnalysisManager,
                          DCEPass, PreSplitPass)
from repro.regalloc.splitting import _split_instruction

from ..helpers import naive_dominators
from ..reference_impl import ref_compute_liveness

SHAPES = GeneratorConfig(n_vars=5, max_depth=3, max_stmts=5)

common = settings(max_examples=50, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


def assert_served_liveness_fresh(am, fn):
    """Whatever ``am.liveness()`` serves now must match the oracle on the
    function as it currently stands."""
    live = am.liveness()
    ref = ref_compute_liveness(fn)
    for label in fn.reverse_postorder():
        assert live.live_in(label) == ref.live_in(label), label
        assert live.live_out(label) == ref.live_out(label), label


def assert_served_dominance_fresh(am, fn):
    dom = am.dominance()
    assert dom.idom == compute_dominance(fn).idom
    naive = naive_dominators(fn)
    for label, idom in dom.idom.items():
        if label != fn.entry.label:
            assert idom in naive[label]


@common
@given(seed=st.integers(0, 10**6))
def test_insert_split_preserves_liveness(seed):
    """The PreSplitPass contract: a ``split r r`` at a point where *r*
    is live leaves every block-boundary live set unchanged, so the
    cached fixed point stays valid without recomputation."""
    fn = random_program(seed, SHAPES)
    fn.split_critical_edges()
    am = AnalysisManager(fn)
    live = am.liveness()

    rng = random.Random(seed)
    candidates = [blk for blk in fn.blocks if live.live_in(blk.label)]
    assume(candidates)
    for blk in rng.sample(candidates, k=min(3, len(candidates))):
        reg = rng.choice(sorted(live.live_in(blk.label)))
        blk.instructions.insert(0, _split_instruction(reg))

    am.invalidate(PreSplitPass.preserves)
    # still the same cached object — and still exactly right
    assert am.cached(LIVENESS)
    assert am.n_computed("liveness") == 1
    assert_served_liveness_fresh(am, fn)
    assert_served_dominance_fresh(am, fn)


@common
@given(seed=st.integers(0, 10**6))
def test_delete_instruction_invalidates_per_dce(seed):
    """Deleting instructions (what DCE does) keeps the CFG shape: after
    invalidating per DCE's declaration, dominance/loops are served from
    cache and still correct, while liveness is recomputed fresh."""
    fn = random_program(seed, SHAPES)
    am = AnalysisManager(fn)
    am.liveness(), am.dominance(), am.loops()

    rng = random.Random(seed)
    candidates = [blk for blk in fn.blocks if len(blk.instructions) > 1]
    assume(candidates)
    blk = rng.choice(candidates)
    del blk.instructions[rng.randrange(len(blk.instructions) - 1)]

    am.invalidate(DCEPass.preserves)
    assert not am.cached(LIVENESS)
    assert am.cached(DOMINANCE) and am.cached(LOOPS)
    assert_served_liveness_fresh(am, fn)
    assert_served_dominance_fresh(am, fn)
    assert am.n_computed("liveness") == 2
    assert am.n_computed("dominance") == 1


@common
@given(seed=st.integers(0, 10**6))
def test_coalesce_rename_maintains_cached_liveness(seed):
    """The coalescer's maintenance path: renaming a register in the code
    and in the cached bitsets (``LivenessInfo.rename``) is equivalent to
    a fresh fixed point on the rewritten function."""
    fn = random_program(seed, SHAPES)
    am = AnalysisManager(fn)
    live = am.liveness()

    rng = random.Random(seed)
    regs = sorted(fn.all_regs())
    assume(regs)
    mapping = {}
    for old in rng.sample(regs, k=min(3, len(regs))):
        mapping[old] = fn.new_reg(old.rclass)
    for blk in fn.blocks:
        for inst in blk.instructions:
            inst.rewrite_regs(mapping)
    live.rename(mapping)

    # the manager keeps serving the maintained object
    assert am.liveness() is live
    assert am.n_computed("liveness") == 1
    assert_served_liveness_fresh(am, fn)
