"""Unit tests for the AnalysisManager and PreservedAnalyses protocol."""

import pytest

from repro.analysis import DominanceInfo, LivenessInfo, LoopInfo
from repro.obs import MetricsRegistry
from repro.passes import (ALL_ANALYSES, ANALYSES_BY_NAME, CFG_ANALYSES,
                          DEFUSE, DOMINANCE, LIVENESS, LOOPS, POSTDOMINANCE,
                          AnalysisManager, PreservedAnalyses)

from ..helpers import nested_loops, single_loop


class TestLazyCaching:
    def test_computes_once_then_reuses(self):
        am = AnalysisManager(single_loop())
        first = am.liveness()
        second = am.liveness()
        assert first is second
        assert am.n_computed("liveness") == 1
        assert am.n_reused("liveness") == 1

    def test_typed_conveniences_return_typed_objects(self):
        am = AnalysisManager(nested_loops())
        assert isinstance(am.liveness(), LivenessInfo)
        assert isinstance(am.dominance(), DominanceInfo)
        assert isinstance(am.loops(), LoopInfo)

    def test_loops_pull_dominance_through_the_manager(self):
        # computing loops computes dominance as a dependency — exactly
        # once, shared with later direct dominance requests
        am = AnalysisManager(nested_loops())
        am.loops()
        assert am.cached(DOMINANCE)
        am.dominance()
        assert am.n_computed("dominance") == 1
        assert am.n_reused("dominance") == 1

    def test_cached_reports_presence_without_computing(self):
        am = AnalysisManager(single_loop())
        assert not am.cached(LIVENESS)
        am.liveness()
        assert am.cached(LIVENESS)
        assert am.n_computed() == 1

    def test_counters_flow_into_shared_registry(self):
        registry = MetricsRegistry()
        am = AnalysisManager(single_loop(), metrics=registry)
        am.liveness()
        am.liveness()
        assert registry.counter("analysis.computed.liveness").value == 1
        assert registry.counter("analysis.reused.liveness").value == 1


class TestInvalidation:
    def test_cfg_preservation_keeps_shape_drops_liveness(self):
        am = AnalysisManager(nested_loops())
        am.liveness(), am.dominance(), am.loops()
        am.invalidate(PreservedAnalyses.cfg())
        assert not am.cached(LIVENESS)
        assert am.cached(DOMINANCE) and am.cached(LOOPS)

    def test_none_preserved_drops_everything(self):
        am = AnalysisManager(nested_loops())
        am.liveness(), am.loops()
        am.invalidate(PreservedAnalyses.none())
        for analysis in ALL_ANALYSES:
            assert not am.cached(analysis)

    def test_all_preserved_drops_nothing(self):
        am = AnalysisManager(nested_loops())
        am.liveness(), am.loops()
        before = am.n_computed()
        am.invalidate(PreservedAnalyses.all())
        am.liveness(), am.loops()
        assert am.n_computed() == before

    def test_invalidate_all(self):
        am = AnalysisManager(single_loop())
        am.liveness()
        am.invalidate_all()
        assert not am.cached(LIVENESS)
        am.liveness()
        assert am.n_computed("liveness") == 2


class TestPreservedAnalyses:
    def test_of_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown analyses"):
            PreservedAnalyses.of("liveness", "typo")

    def test_of_accepts_every_registered_name(self):
        preserved = PreservedAnalyses.of(*ANALYSES_BY_NAME)
        for name in ANALYSES_BY_NAME:
            assert preserved.preserves(name)

    def test_cfg_names_are_shape_only(self):
        assert CFG_ANALYSES == {"dominance", "postdominance", "loops"}
        cfg = PreservedAnalyses.cfg()
        assert cfg.preserves("loops")
        assert not cfg.preserves("liveness")
        assert not cfg.preserves("defuse")

    def test_intersection(self):
        a = PreservedAnalyses.of("dominance", "liveness")
        b = PreservedAnalyses.cfg()
        both = a & b
        assert both.preserves("dominance")
        assert not both.preserves("liveness")
        assert (PreservedAnalyses.all() & a) == a
        assert (a & PreservedAnalyses.all()) == a
        assert (a & PreservedAnalyses.none()) == PreservedAnalyses.none()

    def test_describe(self):
        assert PreservedAnalyses.all().describe() == "all"
        assert PreservedAnalyses.none().describe() == "none"
        assert PreservedAnalyses.of("loops", "dominance").describe() == \
            "dominance, loops"

    def test_all_is_not_merely_every_name(self):
        # all() means "nothing changed", which must survive even if new
        # analyses are registered later — distinct from naming them all
        every = PreservedAnalyses.of(*ANALYSES_BY_NAME)
        assert PreservedAnalyses.all() != every


class TestRegistry:
    def test_five_analyses_registered(self):
        assert {a.name for a in ALL_ANALYSES} == {
            "liveness", "dominance", "postdominance", "loops", "defuse"}
        for analysis in (LIVENESS, DOMINANCE, POSTDOMINANCE, LOOPS, DEFUSE):
            assert ANALYSES_BY_NAME[analysis.name] is analysis
