"""Unit tests for the PassPipeline driver."""

import pytest

from repro.ir import verify_function
from repro.obs import Tracer
from repro.passes import (AnalysisManager, DCEPass, LIVENESS, LVNPass,
                          PassPipeline, PreservedAnalyses, make_pass)

from ..helpers import nested_loops, single_loop


class _RecordingPass:
    """A configurable fake pass: mutates nothing, reports *preserved*."""

    def __init__(self, name, preserved):
        self.name = name
        self.preserves = preserved
        self.preserved = preserved
        self.calls = 0

    def run(self, fn, am):
        self.calls += 1
        return self.preserved


class _DeclaredOnlyPass(_RecordingPass):
    """Returns ``None`` from run: the pipeline must fall back to the
    declared ``preserves``."""

    def run(self, fn, am):
        self.calls += 1
        return None


class TestDriver:
    def test_passes_run_in_order_over_one_manager(self):
        order = []

        class P(_RecordingPass):
            def run(self, inner_self_fn, am):  # noqa: N805
                order.append(self.name)
                return self.preserved

        passes = [P("a", PreservedAnalyses.all()),
                  P("b", PreservedAnalyses.all())]
        report = PassPipeline(passes).run(single_loop())
        assert order == ["a", "b"]
        assert report.pass_names == ["a", "b"]
        assert not report.changed()

    def test_invalidates_per_returned_preservation(self):
        fn = single_loop()
        am = AnalysisManager(fn)
        am.liveness()
        keeper = _RecordingPass("keeper", PreservedAnalyses.all())
        dropper = _RecordingPass("dropper", PreservedAnalyses.cfg())
        PassPipeline([keeper]).run(fn, am)
        assert am.cached(LIVENESS)
        report = PassPipeline([dropper]).run(fn, am)
        assert not am.cached(LIVENESS)
        assert report.changed()

    def test_none_return_falls_back_to_declared(self):
        fn = single_loop()
        am = AnalysisManager(fn)
        am.liveness()
        p = _DeclaredOnlyPass("d", PreservedAnalyses.cfg())
        report = PassPipeline([p]).run(fn, am)
        assert not am.cached(LIVENESS)
        assert report.preserved == [PreservedAnalyses.cfg()]

    def test_fresh_manager_created_when_none_given(self):
        p = _RecordingPass("p", PreservedAnalyses.all())
        assert PassPipeline([p]).run(single_loop()).pass_names == ["p"]
        assert p.calls == 1

    def test_verify_after_each_counts_and_checks(self):
        report = PassPipeline([DCEPass(), LVNPass()],
                              verify_after_each=True).run(nested_loops())
        assert report.verifications == 2

    def test_verify_catches_a_corrupting_pass(self):
        class Corrupter(_RecordingPass):
            def run(self, fn, am):
                # dangle a branch target: the verifier must object
                blk = fn.blocks[0]
                term = blk.terminator
                blk.instructions[-1] = term.with_labels(("nowhere",))
                return PreservedAnalyses.none()

        p = Corrupter("corrupt", PreservedAnalyses.none())
        with pytest.raises(Exception):
            PassPipeline([p], verify_after_each=True).run(single_loop())

    def test_spans_recorded_per_pass(self):
        tracer = Tracer()
        PassPipeline([DCEPass(), LVNPass()],
                     tracer=tracer).run(nested_loops())
        root = tracer.root
        assert root.name == "pipeline"
        names = [span.attrs["which"] for span in root.children]
        assert names == ["dce", "lvn"]


class TestPrintHooks:
    def test_print_before_and_after_selected_pass(self):
        lines = []
        PassPipeline([DCEPass(), LVNPass()],
                     print_before=["lvn"], print_after=["lvn"],
                     dump=lines.append).run(nested_loops())
        headers = [line for line in lines if line.startswith("# ---")]
        assert headers == ["# --- IR before lvn ---",
                           "# --- IR after lvn ---"]

    def test_all_selects_every_pass(self):
        lines = []
        PassPipeline([DCEPass(), LVNPass()], print_after=["all"],
                     dump=lines.append).run(nested_loops())
        headers = [line for line in lines if line.startswith("# ---")]
        assert headers == ["# --- IR after dce ---",
                           "# --- IR after lvn ---"]


class TestRegisteredPipelines:
    def test_registry_pipeline_preserves_semantics(self):
        from repro.interp import run_function

        fn = nested_loops()
        expected = run_function(fn.clone(), args=[6]).output
        PassPipeline([make_pass("lvn"), make_pass("licm"),
                      make_pass("dce")],
                     verify_after_each=True).run(fn)
        verify_function(fn)
        assert run_function(fn, args=[6]).output == expected

    def test_renumber_pass_runs_standalone(self):
        fn = nested_loops()
        fn.split_critical_edges()
        p = make_pass("renumber-remat")
        report = PassPipeline([p], verify_after_each=True).run(fn)
        assert p.outcome is not None
        assert report.changed()
        verify_function(fn)
