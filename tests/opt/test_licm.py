"""Tests for loop-invariant code motion."""

from repro.analysis import compute_loops
from repro.interp import run_function
from repro.ir import Opcode, parse_function, verify_function
from repro.opt import hoist_loop_invariants, optimize

from ..helpers import ALL_SHAPES, nested_loops

LOOP_WITH_INVARIANT = """proc f 1
entry:
    param r0 0
    ldi r1 0
    jmp head
head:
    cmp_lt r2 r1 r0
    cbr r2 body exit
body:
    lsd r3 64
    addi r4 r3 8
    add r1 r1 r4
    jmp head
exit:
    out r1
    ret
"""


class TestLICM:
    def test_hoists_invariant_chain(self):
        fn = parse_function(LOOP_WITH_INVARIANT)
        expected = run_function(fn.clone(), args=[100000]).output
        stats = hoist_loop_invariants(fn)
        assert stats.hoisted == 2       # the lsd and the addi
        verify_function(fn)
        assert run_function(fn, args=[100000]).output == expected
        # the loop body no longer computes the address
        body_ops = [i.opcode for i in fn.block("body").instructions]
        assert Opcode.LSD not in body_ops
        assert Opcode.ADDI not in body_ops

    def test_hoisting_reduces_dynamic_count(self):
        # the invariant address is ~65608, so a bound of 1_000_000 gives
        # the loop a double-digit trip count
        fn = parse_function(LOOP_WITH_INVARIANT)
        before = run_function(fn.clone(), args=[1_000_000]).steps
        hoist_loop_invariants(fn)
        after = run_function(fn, args=[1_000_000]).steps
        assert after < before

    def test_does_not_hoist_variant_computation(self):
        fn = parse_function(LOOP_WITH_INVARIANT)
        hoist_loop_invariants(fn)
        # the accumulation add uses r1 which is redefined in the loop
        body_ops = [i.opcode for i in fn.block("body").instructions]
        assert Opcode.ADD in body_ops

    def test_does_not_hoist_divisions(self):
        """Division may trap; speculating it out of a guarded loop body
        could fault when the loop never runs."""
        text = """proc f 1
entry:
    param r0 0
    ldi r1 10
    ldi r5 0
    jmp head
head:
    cmp_lt r2 r5 r0
    cbr r2 body exit
body:
    div r3 r1 r5
    addi r5 r5 1
    jmp head
exit:
    out r5
    ret
"""
        fn = parse_function(text)
        hoist_loop_invariants(fn)
        body_ops = [i.opcode for i in fn.block("body").instructions]
        assert Opcode.DIV in body_ops
        # n=0: loop never executes, so the division never runs
        assert run_function(fn, args=[0]).output == [0]

    def test_live_in_destinations_not_hoisted(self):
        """A value used at the header before its in-loop redefinition must
        stay put."""
        text = """proc f 1
entry:
    param r0 0
    ldi r1 5
    ldi r5 0
    jmp head
head:
    add r6 r5 r1
    cmp_lt r2 r6 r0
    cbr r2 body exit
body:
    ldi r1 3
    addi r5 r5 1
    jmp head
exit:
    out r1
    ret
"""
        fn = parse_function(text)
        expected = run_function(fn.clone(), args=[6]).output
        hoist_loop_invariants(fn)
        assert run_function(fn, args=[6]).output == expected

    def test_creates_preheader_when_needed(self):
        fn = nested_loops()
        n_blocks = len(fn.blocks)
        stats = hoist_loop_invariants(fn)
        assert len(fn.blocks) >= n_blocks   # preheaders may be added
        verify_function(fn)

    def test_nested_loops_percolate_outward(self):
        """An invariant of the inner loop that is also invariant in the
        outer loop ends up outside both."""
        text = """proc f 1
entry:
    param r0 0
    ldi r1 0
    ldi r9 0
    jmp ohead
ohead:
    cmp_lt r2 r1 r0
    cbr r2 obody oexit
obody:
    ldi r3 0
    jmp ihead
ihead:
    cmp_lt r4 r3 r0
    cbr r4 ibody iexit
ibody:
    lsd r5 16
    addi r6 r5 4
    add r9 r9 r6
    addi r3 r3 1
    jmp ihead
iexit:
    addi r1 r1 1
    jmp ohead
oexit:
    out r9
    ret
"""
        fn = parse_function(text)
        expected = run_function(fn.clone(), args=[4]).output
        stats = hoist_loop_invariants(fn)
        assert stats.hoisted >= 2
        assert run_function(fn, args=[4]).output == expected
        loops = compute_loops(fn)
        # the lsd must now live at depth 0
        for blk in fn.blocks:
            for inst in blk.instructions:
                if inst.opcode is Opcode.LSD:
                    assert loops.depth.get(blk.label, 0) == 0

    def test_semantics_preserved_on_shapes(self):
        for shape in ALL_SHAPES:
            fn = shape()
            expected = run_function(fn.clone(), args=[6]).output
            hoist_loop_invariants(fn)
            verify_function(fn)
            assert run_function(fn, args=[6]).output == expected, shape


class TestOptimizePipeline:
    def test_pipeline_reaches_fixed_point(self):
        fn = parse_function(LOOP_WITH_INVARIANT)
        stats = optimize(fn)
        assert stats.rounds <= 4
        again = optimize(fn)
        assert (again.lvn_replaced, again.licm_hoisted,
                again.dce_removed) == (0, 0, 0)

    def test_pipeline_on_all_kernels(self):
        from repro.benchsuite import ALL_KERNELS
        for kernel in ALL_KERNELS[:8]:
            fn = kernel.compile()
            expected = run_function(fn.clone(), args=list(kernel.args))
            stats = optimize(fn)
            verify_function(fn)
            got = run_function(fn, args=list(kernel.args))
            assert got.output == expected.output, kernel.name
            assert got.steps <= expected.steps, kernel.name

    def test_pipeline_shrinks_sgemm_inner_loop(self):
        """LVN+LICM remove redundant address arithmetic from the matmul
        inner loop."""
        from repro.benchsuite import KERNELS_BY_NAME
        kernel = KERNELS_BY_NAME["sgemm"]
        fn = kernel.compile()
        before = run_function(fn.clone(), args=list(kernel.args)).steps
        optimize(fn)
        after = run_function(fn, args=list(kernel.args)).steps
        assert after < before * 0.9
