"""Tests for dead-code elimination."""

from repro.interp import run_function
from repro.ir import IRBuilder, Opcode, parse_function
from repro.opt import eliminate_dead_code

from ..helpers import ALL_SHAPES


class TestDCE:
    def test_removes_unused_pure_instruction(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        b.ldi(99)                     # dead
        b.out(x)
        b.ret()
        fn = b.finish()
        stats = eliminate_dead_code(fn)
        assert stats.removed == 1
        assert fn.size() == 3

    def test_removes_transitively_dead_chains(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        y = b.addi(x, 1)              # feeds only z
        z = b.muli(y, 2)              # dead
        b.out(x)
        b.ret()
        fn = b.finish()
        stats = eliminate_dead_code(fn)
        assert stats.removed == 2
        assert stats.passes >= 2

    def test_keeps_side_effects(self):
        text = """proc f 0
entry:
    ldi r0 1
    stw r0 r0
    spst r0 3
    out r0
    ret
"""
        fn = parse_function(text)
        assert eliminate_dead_code(fn).removed == 0

    def test_keeps_terminators_and_live_code(self):
        text = """proc f 0
entry:
    ldi r0 1
    cbr r0 a z
a:
    ldi r1 2
    out r1
    ret
z:
    ret
"""
        fn = parse_function(text)
        assert eliminate_dead_code(fn).removed == 0

    def test_dead_load_removed(self):
        """Loads have no side effects and may be dropped when unused."""
        b = IRBuilder("f")
        base = b.lsd(0)
        b.ldw(base)                   # dead load (base then also dead)
        b.out(b.ldi(7))
        b.ret()
        fn = b.finish()
        assert eliminate_dead_code(fn).removed == 2

    def test_semantics_preserved_on_shapes(self):
        for shape in ALL_SHAPES:
            fn = shape()
            expected = run_function(fn.clone(), args=[6]).output
            eliminate_dead_code(fn)
            assert run_function(fn, args=[6]).output == expected, shape
