"""Optimizer property tests: behavior preservation on random programs,
composed with the allocator."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.benchsuite import GeneratorConfig, random_program
from repro.interp import run_function
from repro.ir import verify_function
from repro.machine import machine_with
from repro.opt import optimize
from repro.regalloc import allocate
from repro.remat import RenumberMode

SHAPES = GeneratorConfig(n_vars=5, max_depth=3, max_stmts=5)


@pytest.mark.parametrize("seed", range(15))
def test_optimize_preserves_output(seed):
    fn = random_program(seed + 900, SHAPES)
    expected = run_function(fn.clone(), max_steps=2_000_000)
    stats = optimize(fn)
    verify_function(fn)
    got = run_function(fn, max_steps=2_000_000)
    assert got.output == expected.output
    assert got.steps <= expected.steps


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000), k=st.integers(4, 8))
def test_optimize_then_allocate_preserves_output(seed, k):
    fn = random_program(seed, SHAPES)
    expected = run_function(fn.clone(), max_steps=2_000_000).output
    optimize(fn)
    result = allocate(fn, machine=machine_with(k, k),
                      mode=RenumberMode.REMAT)
    got = run_function(result.function, max_steps=2_000_000).output
    assert got == expected


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_optimize_is_idempotent(seed):
    fn = random_program(seed, SHAPES)
    optimize(fn)
    first = str(fn)
    again = optimize(fn)
    assert (again.lvn_replaced, again.licm_hoisted,
            again.dce_removed) == (0, 0, 0)
    assert str(fn) == first
