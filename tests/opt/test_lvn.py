"""Tests for local value numbering."""

from repro.interp import run_function
from repro.ir import Opcode, parse_function
from repro.opt import eliminate_dead_code, run_lvn

from ..helpers import ALL_SHAPES


def lvn(text):
    fn = parse_function(text)
    stats = run_lvn(fn)
    return fn, stats


class TestLVN:
    def test_duplicate_constant_collapses(self):
        fn, stats = lvn("""proc f 0
entry:
    ldi r0 7
    ldi r1 7
    add r2 r0 r1
    out r2
    ret
""")
        assert stats.replaced == 1
        ops = [i.opcode for i in fn.entry.instructions]
        assert ops.count(Opcode.LDI) == 1
        assert Opcode.COPY in ops
        assert run_function(fn).output == [14]

    def test_duplicate_address_computation_collapses(self):
        fn, stats = lvn("""proc f 0
entry:
    lsd r0 64
    lsd r1 64
    ldw r2 r0
    ldw r3 r1
    add r4 r2 r3
    out r4
    ret
""")
        assert stats.replaced == 1

    def test_commutative_matching(self):
        fn, stats = lvn("""proc f 0
entry:
    ldi r0 2
    ldi r1 3
    add r2 r0 r1
    add r3 r1 r0
    sub r4 r2 r3
    out r4
    ret
""")
        assert stats.replaced == 1
        assert run_function(fn).output == [0]

    def test_noncommutative_not_matched(self):
        fn, stats = lvn("""proc f 0
entry:
    ldi r0 2
    ldi r1 3
    sub r2 r0 r1
    sub r3 r1 r0
    out r2
    out r3
    ret
""")
        assert stats.replaced == 0
        assert run_function(fn).output == [-1, 1]

    def test_copies_are_value_transparent(self):
        fn, stats = lvn("""proc f 0
entry:
    ldi r0 5
    copy r1 r0
    addi r2 r0 1
    addi r3 r1 1
    add r4 r2 r3
    out r4
    ret
""")
        assert stats.replaced == 1
        assert run_function(fn).output == [12]

    def test_loads_never_numbered(self):
        """A store can intervene: loads must not be CSE'd."""
        fn, stats = lvn("""proc f 0
entry:
    lsd r0 0
    ldw r1 r0
    ldi r2 9
    stw r2 r0
    ldw r3 r0
    out r1
    out r3
    ret
""")
        assert stats.replaced == 0
        assert run_function(fn).output == [0, 9]

    def test_redefinition_invalidates_home(self):
        """After the home register is overwritten, a repeated expression
        must not copy from it."""
        fn, stats = lvn("""proc f 0
entry:
    ldi r0 2
    ldi r1 3
    add r2 r0 r1
    copy r2 r0
    add r3 r0 r1
    out r2
    out r3
    ret
""")
        # r2 held the sum but was clobbered; r3 must be recomputed or
        # taken from a still-valid home — either way outputs are right
        assert run_function(fn).output == [2, 5]

    def test_different_blocks_do_not_share(self):
        fn, stats = lvn("""proc f 0
entry:
    ldi r0 7
    jmp next
next:
    ldi r1 7
    out r0
    out r1
    ret
""")
        assert stats.replaced == 0

    def test_semantics_preserved_on_shapes(self):
        for shape in ALL_SHAPES:
            fn = shape()
            expected = run_function(fn.clone(), args=[6]).output
            run_lvn(fn)
            eliminate_dead_code(fn)
            assert run_function(fn, args=[6]).output == expected, shape
