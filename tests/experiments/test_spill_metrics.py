"""Tests for the Section 5.2 measurement methodology."""

from repro.benchsuite import KERNELS_BY_NAME
from repro.experiments import (compare_kernel, measure, measure_baseline)
from repro.ir import CountClass
from repro.machine import huge_machine, machine_with, standard_machine
from repro.remat import RenumberMode


class TestMeasure:
    def test_huge_machine_is_the_floor(self):
        kernel = KERNELS_BY_NAME["adapt"]
        baseline = measure_baseline(kernel, cost_machine=standard_machine())
        pressured = measure(kernel, machine_with(8, 8), RenumberMode.CHAITIN,
                            cost_machine=standard_machine())
        assert pressured.total_cycles >= baseline.total_cycles

    def test_spill_cycles_zero_when_no_pressure(self):
        kernel = KERNELS_BY_NAME["zeroin"]          # tiny working set
        baseline = measure_baseline(kernel, cost_machine=standard_machine())
        std = measure(kernel, standard_machine(), RenumberMode.REMAT)
        assert std.spill_cycles_vs(baseline) == 0

    def test_total_is_sum_of_classes(self):
        kernel = KERNELS_BY_NAME["repvid"]
        m = measure(kernel, standard_machine(), RenumberMode.REMAT)
        assert m.total_cycles == sum(m.class_cycles.values())

    def test_class_costs_use_machine_model(self):
        kernel = KERNELS_BY_NAME["repvid"]
        m = measure(kernel, standard_machine(), RenumberMode.REMAT)
        # loads cost 2: class cycles for LOAD must be even
        assert m.class_cycles.get(CountClass.LOAD, 0) % 2 == 0


class TestCompareKernel:
    def test_contributions_sum_to_total(self):
        kernel = KERNELS_BY_NAME["adapt"]
        row = compare_kernel(kernel, standard_machine())
        assert row.differs
        total = sum(row.contributions.values())
        assert abs(total - row.total_percent) < 1e-6

    def test_adapt_improves_with_paper_pattern(self):
        """Fewer loads (positive contribution), more immediates
        (negative ldi/addi contribution), net improvement."""
        kernel = KERNELS_BY_NAME["adapt"]
        row = compare_kernel(kernel, standard_machine())
        assert row.total_percent > 0
        assert row.contributions[CountClass.LOAD] > 0
        assert (row.contributions[CountClass.LDI]
                + row.contributions[CountClass.ADDI]) < 0

    def test_colbur_degrades(self):
        """The designed loss specimen mirrors the paper's colbur row."""
        kernel = KERNELS_BY_NAME["colbur"]
        row = compare_kernel(kernel, standard_machine())
        assert row.total_percent < 0

    def test_no_difference_row(self):
        kernel = KERNELS_BY_NAME["zeroin"]
        row = compare_kernel(kernel, standard_machine())
        assert not row.differs
        assert row.total_percent == 0.0
