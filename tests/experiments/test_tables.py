"""Tests for the Table 1 / Table 2 generators and the ablation harness."""

from repro.benchsuite import KERNELS_BY_NAME
from repro.experiments import (generate_table1, generate_table2,
                               paper_percent, render_table, run_ablation,
                               run_heuristic_ablation)
from repro.machine import machine_with, standard_machine

FAST_KERNELS = [KERNELS_BY_NAME[n]
                for n in ("zeroin", "adapt", "marginal", "colbur")]


class TestPaperPercent:
    def test_blank_for_exact_zero(self):
        assert paper_percent(0.0) == ""

    def test_insignificant_improvement_is_0(self):
        assert paper_percent(0.2) == "0"

    def test_insignificant_loss_is_minus_0(self):
        assert paper_percent(-0.2) == "-0"

    def test_rounding(self):
        assert paper_percent(26.6) == "27"
        assert paper_percent(-11.4) == "-11"


class TestRenderTable:
    def test_headers_and_alignment(self):
        text = render_table(["name", "value"],
                            [["a", "1"], ["bb", "22"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        assert lines[3].startswith("-")


class TestTable1:
    def test_generates_rows_for_all_kernels(self):
        table = generate_table1(kernels=FAST_KERNELS)
        assert len(table.rows) == len(FAST_KERNELS)

    def test_render_hides_unchanged_rows(self):
        table = generate_table1(kernels=FAST_KERNELS)
        text = table.render()
        assert "zeroin" not in text      # no difference -> not shown
        assert "adapt" in text

    def test_summary_counts(self):
        table = generate_table1(kernels=FAST_KERNELS)
        assert table.n_improved >= 2
        assert table.n_degraded >= 1
        assert "improvements in" in table.render()


class TestTable2:
    def test_columns_and_phases(self):
        table = generate_table2(routines=("repvid", "tomcatv"), repeats=2)
        assert len(table.columns) == 2
        text = table.render()
        assert "cfa" in text and "renum" in text and "build" in text
        assert "total" in text

    def test_tomcatv_takes_extra_spill_rounds(self):
        """Parallel to the paper's note that tomcatv required an
        additional round of spilling."""
        table = generate_table2(routines=("tomcatv",), repeats=1)
        old, new = table.columns[0]
        assert len(old.rounds) >= 2


class TestAblation:
    def test_all_schemes_measured(self):
        result = run_ablation(kernels=FAST_KERNELS[:2],
                              machine=machine_with(8, 8))
        for per_scheme in result.spill.values():
            assert set(per_scheme) == {
                "chaitin", "remat", "around-all-loops",
                "around-outer-loops", "around-unused-loops", "at-phis",
                "forward-reverse-df"}
        assert "wins vs remat" in result.render()

    def test_heuristic_ablation(self):
        result = run_heuristic_ablation(kernels=FAST_KERNELS[:2],
                                        machine=machine_with(8, 8))
        for per in result.spill.values():
            assert set(per) == {"full", "no-biasing", "no-lookahead",
                                "no-conservative", "pessimistic"}
        assert "TOTAL" in result.render()
