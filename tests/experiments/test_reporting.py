"""Tests for text-table rendering details."""

from repro.experiments import render_table


class TestRenderTable:
    def test_numeric_columns_right_aligned(self):
        text = render_table(["name", "n"], [["a", "5"], ["long", "1234"]])
        lines = text.splitlines()
        assert lines[-1].endswith("1234")
        assert lines[-2].endswith("   5")

    def test_text_columns_left_aligned(self):
        text = render_table(["name", "n"], [["a", "1"], ["bb", "2"]])
        body = text.splitlines()[-2:]
        assert body[0].startswith("a ")
        assert body[1].startswith("bb")

    def test_percent_and_comma_values_count_as_numeric(self):
        text = render_table(["v"], [["1,234"], ["56%"], ["-7"]])
        lines = text.splitlines()
        width = len(lines[0])
        for line in lines[2:]:
            assert len(line) <= max(width, 5)

    def test_blank_cells_allowed(self):
        text = render_table(["a", "b"], [["x", ""], ["y", "3"]])
        assert "x" in text and "3" in text

    def test_separator_matches_width(self):
        text = render_table(["head", "x"], [["content", "1"]])
        header, sep = text.splitlines()[0], text.splitlines()[1]
        assert len(sep) >= len("head")

    def test_title_block(self):
        text = render_table(["a"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == ""
