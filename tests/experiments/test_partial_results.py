"""Partial-table rendering: quarantined requests skip rows, not runs.

Every harness receives typed :class:`ExperimentFailure` values in place
of summaries and must degrade to a partial table plus a failure
appendix — never an unhandled exception.  Faults are injected serially
(``jobs=1``) so these stay fast; the parallel recovery paths are
covered by ``tests/engine/test_chaos.py``.
"""

import pytest

from repro.benchsuite import KERNELS_BY_NAME
from repro.engine import (ExperimentEngine, ExperimentError, FaultPlan,
                          SupervisorConfig, request_key)
from repro.experiments import (baseline_request, compare_kernel,
                               generate_table1, generate_table2,
                               kernel_request, render_failures,
                               run_ablation, run_heuristic_ablation,
                               run_register_sweep)
from repro.experiments.spill_metrics import comparison_requests
from repro.machine import machine_with, standard_machine
from repro.remat import RenumberMode

KERNELS = [KERNELS_BY_NAME[n] for n in ("zeroin", "adapt", "marginal")]


def poisoned_engine(*keys: str, max_attempts: int = 2) -> ExperimentEngine:
    return ExperimentEngine(
        jobs=1, use_cache=False,
        fault_plan=FaultPlan(poison=frozenset(keys)),
        supervisor=SupervisorConfig(max_attempts=max_attempts,
                                    backoff=0.0))


class TestTable1:
    def test_failed_kernel_is_skipped_not_fatal(self):
        machine = standard_machine()
        bad = request_key(comparison_requests(KERNELS[1], machine)[1])
        table = generate_table1(machine=machine, kernels=KERNELS,
                                engine=poisoned_engine(bad))
        assert table.skipped == [KERNELS[1].name]
        assert len(table.failures) == 1
        assert len(table.rows) == len(KERNELS) - 1
        rendered = table.render()
        assert "PARTIAL RESULTS" in rendered
        assert KERNELS[1].name in rendered

    def test_fault_free_render_has_no_appendix(self):
        table = generate_table1(kernels=KERNELS)
        assert table.skipped == []
        assert "PARTIAL RESULTS" not in table.render()


class TestTable2:
    def test_failed_routine_drops_both_columns(self):
        machine = machine_with(8, 8)
        kernel = KERNELS_BY_NAME["repvid"]
        bad = request_key(kernel_request(
            kernel, machine, RenumberMode.CHAITIN, run=False, repeats=2,
            cacheable=False))
        table = generate_table2(routines=("repvid", "tomcatv"),
                                machine=machine, repeats=2,
                                engine=poisoned_engine(bad))
        assert table.skipped == ["repvid"]
        assert [old.routine for old, _ in table.columns] == ["tomcatv"]
        assert "PARTIAL RESULTS" in table.render()

    def test_all_routines_failed_still_renders(self):
        machine = machine_with(8, 8)
        kernel = KERNELS_BY_NAME["repvid"]
        keys = [request_key(kernel_request(kernel, machine, mode,
                                           run=False, repeats=2,
                                           cacheable=False))
                for mode in (RenumberMode.CHAITIN, RenumberMode.REMAT)]
        table = generate_table2(routines=("repvid",), machine=machine,
                                repeats=2, engine=poisoned_engine(*keys))
        assert table.columns == []
        assert "no routine measured" in table.render()


class TestAblations:
    def test_scheme_ablation_skips_failed_kernel(self):
        machine = machine_with(8, 8)
        bad = request_key(baseline_request(KERNELS[0]))
        result = run_ablation(kernels=KERNELS, machine=machine,
                              engine=poisoned_engine(bad))
        assert result.skipped == [KERNELS[0].name]
        assert set(result.spill) == {k.name for k in KERNELS[1:]}
        assert "PARTIAL RESULTS" in result.render()

    def test_heuristic_ablation_skips_failed_kernel(self):
        machine = machine_with(8, 8)
        bad = request_key(kernel_request(KERNELS[2], machine,
                                         RenumberMode.REMAT,
                                         lookahead=False))
        result = run_heuristic_ablation(kernels=KERNELS, machine=machine,
                                        engine=poisoned_engine(bad))
        assert result.skipped == [KERNELS[2].name]
        assert set(result.spill) == {k.name for k in KERNELS[:2]}
        assert "PARTIAL RESULTS" in result.render()


class TestRegisterSweep:
    def test_failed_kernel_leaves_every_point(self):
        bad = request_key(kernel_request(KERNELS[0], machine_with(6, 6),
                                         RenumberMode.REMAT))
        sweep = run_register_sweep(ks=(6, 8), kernels=KERNELS,
                                   engine=poisoned_engine(bad))
        assert sweep.skipped == [KERNELS[0].name]
        assert len(sweep.points) == 2
        # the dropped kernel is gone from *every* point, so totals stay
        # comparable across k
        reference = run_register_sweep(ks=(6, 8), kernels=KERNELS[1:])
        assert [(p.old_spill, p.new_spill) for p in sweep.points] \
            == [(p.old_spill, p.new_spill) for p in reference.points]
        assert "PARTIAL RESULTS" in sweep.render()


class TestSingleRequestCallSites:
    def test_compare_kernel_raises_typed_error(self):
        machine = standard_machine()
        bad = request_key(comparison_requests(KERNELS[0], machine)[2])
        with pytest.raises(ExperimentError):
            compare_kernel(KERNELS[0], machine,
                           engine=poisoned_engine(bad))


class TestRenderFailures:
    def test_empty_is_empty(self):
        assert render_failures([]) == ""

    def test_lists_each_failure(self):
        machine = standard_machine()
        keys = [request_key(comparison_requests(k, machine)[2])
                for k in KERNELS[:2]]
        engine = poisoned_engine(*keys)
        generate_table1(machine=machine, kernels=KERNELS, engine=engine)
        text = render_failures(engine.failures,
                               [k.name for k in KERNELS[:2]])
        assert "2 request(s) failed" in text
        # jobs=1 injects faults in-process, so the crash surfaces as the
        # typed InjectedFault rather than a worker death
        assert "InjectedFault" in text
        assert "in-process" in text
        for kernel in KERNELS[:2]:
            assert kernel.name in text
