"""Unit-level tests for Table 2's timing collection."""

from repro.benchsuite import KERNELS_BY_NAME
from repro.experiments import TimingColumn, generate_table2
from repro.experiments.table2 import PHASES
from repro.machine import machine_with
from repro.remat import RenumberMode


class TestTimingColumn:
    def test_collect_averages_over_repeats(self):
        kernel = KERNELS_BY_NAME["repvid"]
        col = TimingColumn.collect(kernel, RenumberMode.REMAT,
                                   machine_with(8, 8), repeats=3)
        assert col.routine == "repvid"
        assert col.cfa > 0
        assert col.total > 0
        assert col.rounds
        for phase_times in col.rounds:
            assert set(phase_times) == set(PHASES)
            for value in phase_times.values():
                assert value >= 0

    def test_code_size_recorded(self):
        kernel = KERNELS_BY_NAME["repvid"]
        col = TimingColumn.collect(kernel, RenumberMode.CHAITIN,
                                   machine_with(8, 8), repeats=1)
        assert col.code_size > 50

    def test_rounds_match_spilling(self):
        kernel = KERNELS_BY_NAME["tomcatv"]
        col = TimingColumn.collect(kernel, RenumberMode.CHAITIN,
                                   machine_with(8, 8), repeats=1)
        assert len(col.rounds) >= 2       # tomcatv iterates at k=8
        # the final round does not spill
        assert col.rounds[-1]["spill"] == 0.0


class TestTable2Rendering:
    def test_blank_cells_for_shorter_columns(self):
        table = generate_table2(routines=("repvid", "tomcatv"), repeats=1)
        text = table.render()
        # repvid finishes in one round, tomcatv needs more: rows exist
        # for tomcatv's later rounds with repvid columns blank
        lines = text.splitlines()
        renum_rows = [l for l in lines if l.startswith("renum")]
        assert len(renum_rows) >= 2

    def test_sizes_in_title(self):
        table = generate_table2(routines=("repvid",), repeats=1)
        assert "ILOC instructions" in table.render()
