"""Tests for the register-set sweep experiment."""

from repro.benchsuite import KERNELS_BY_NAME
from repro.experiments import run_register_sweep

KERNELS = [KERNELS_BY_NAME[n] for n in ("adapt", "zeroin", "ptrsum")]


class TestSweep:
    def test_spill_cycles_decrease_with_registers(self):
        sweep = run_register_sweep(ks=(6, 10, 16, 32), kernels=KERNELS)
        olds = [p.old_spill for p in sweep.points]
        assert olds == sorted(olds, reverse=True)
        assert sweep.points[-1].old_spill == 0   # 32 regs: no pressure

    def test_remat_wins_in_the_pressure_band(self):
        sweep = run_register_sweep(ks=(16,), kernels=KERNELS)
        (point,) = sweep.points
        assert point.new_spill < point.old_spill

    def test_render(self):
        sweep = run_register_sweep(ks=(8, 16), kernels=KERNELS)
        text = sweep.render()
        assert "Register-set sweep" in text
        assert "improvement" in text
        assert len(text.splitlines()) >= 6
