"""Tests for postdominators and reverse dominance frontiers."""

from repro.analysis import VIRTUAL_EXIT, compute_postdominance
from repro.ir import IRBuilder

from ..helpers import diamond, single_loop


class TestPostdominance:
    def test_join_postdominates_branches(self):
        pdom = compute_postdominance(diamond())
        assert pdom.postdominates("join", "entry")
        assert pdom.postdominates("join", "left")
        assert pdom.postdominates("join", "right")
        assert not pdom.postdominates("left", "entry")

    def test_ipdom_of_diamond(self):
        pdom = compute_postdominance(diamond())
        assert pdom.ipdom["left"] == "join"
        assert pdom.ipdom["right"] == "join"
        assert pdom.ipdom["entry"] == "join"
        assert pdom.ipdom["join"] == VIRTUAL_EXIT

    def test_loop_exit_postdominates_loop(self):
        pdom = compute_postdominance(single_loop())
        assert pdom.postdominates("exit", "head")
        assert pdom.postdominates("exit", "body")
        assert pdom.postdominates("head", "body")

    def test_reverse_frontier_of_diamond(self):
        pdom = compute_postdominance(diamond())
        # walking the reverse CFG, 'entry' is the join: branches' reverse
        # frontier is entry
        assert pdom.frontier["left"] == {"entry"}
        assert pdom.frontier["right"] == {"entry"}

    def test_multiple_rets(self):
        b = IRBuilder("two_rets")
        c = b.ldi(1)
        b.cbr(c, "a", "z")
        b.label("a")
        b.ret()
        b.label("z")
        b.ret()
        fn = b.finish()
        pdom = compute_postdominance(fn)
        assert pdom.ipdom["a"] == VIRTUAL_EXIT
        assert pdom.ipdom["z"] == VIRTUAL_EXIT
        assert pdom.ipdom["entry"] == VIRTUAL_EXIT
        assert not pdom.postdominates("a", "entry")
