"""Tests for the dense register index underlying the bitset analyses."""

import pytest

from repro.analysis import RegIndex, iter_bits
from repro.ir import Reg, RegClass

from ..helpers import single_loop


class TestIterBits:
    def test_empty(self):
        assert list(iter_bits(0)) == []

    def test_positions_ascending(self):
        bits = (1 << 0) | (1 << 3) | (1 << 17) | (1 << 200)
        assert list(iter_bits(bits)) == [0, 3, 17, 200]

    def test_popcount_agrees(self):
        bits = 0b1011_0110_0001
        assert len(list(iter_bits(bits))) == bits.bit_count()


class TestRegIndex:
    def test_ids_are_dense_and_stable(self):
        idx = RegIndex()
        a, b = Reg.vint(7), Reg.vfloat(2)
        assert idx.ensure(a) == 0
        assert idx.ensure(b) == 1
        assert idx.ensure(a) == 0          # idempotent
        assert idx.id(a) == 0 and idx.get(b) == 1
        assert idx.get(Reg.vint(99)) is None
        with pytest.raises(KeyError):
            idx.id(Reg.vint(99))
        assert idx.reg(1) == b
        assert len(idx) == 2

    def test_class_masks_partition_universe(self):
        fn = single_loop()
        idx = RegIndex.for_function(fn)
        int_mask = idx.class_mask(RegClass.INT)
        float_mask = idx.class_mask(RegClass.FLOAT)
        assert int_mask & float_mask == 0
        assert int_mask | float_mask == idx.universe_mask()

    def test_for_function_classes_are_contiguous(self):
        """Sorted construction gives each class a contiguous id range."""
        fn = single_loop()
        idx = RegIndex.for_function(fn)
        classes = [idx.reg(i).rclass for i in range(len(idx))]
        # once the class changes it never changes back
        changes = sum(1 for a, b in zip(classes, classes[1:]) if a is not b)
        assert changes <= 1

    def test_set_bitset_roundtrip(self):
        fn = single_loop()
        idx = RegIndex.for_function(fn)
        regs = set(list(fn.all_regs())[:3])
        bits = idx.from_set(regs)
        assert idx.to_set(bits) == regs
        assert bits.bit_count() == len(regs)
        assert set(idx.iter_regs(bits)) == regs

    def test_from_regs_appends_unseen(self):
        idx = RegIndex()
        new = Reg.vint(5)
        bits = idx.from_regs([new])
        assert bits == 1 and new in idx

    def test_from_set_requires_known_regs(self):
        idx = RegIndex()
        with pytest.raises(KeyError):
            idx.from_set([Reg.vint(1)])

    def test_dynamic_ensure_keeps_masks_exact(self):
        idx = RegIndex([Reg.vint(0), Reg.vfloat(0)])
        idx.ensure(Reg.vint(1))            # non-contiguous append
        assert idx.class_mask(RegClass.INT) == 0b101
        assert idx.class_mask(RegClass.FLOAT) == 0b010
