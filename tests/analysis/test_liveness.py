"""Tests for live-variable analysis."""

import pytest

from repro.analysis import RegIndex, block_use_def, compute_liveness
from repro.ir import IRBuilder, Reg

from ..helpers import ALL_SHAPES, naive_live_in, single_loop


class TestUseDef:
    def test_use_before_def_is_upward_exposed(self):
        b = IRBuilder("f")
        x = b.function.new_reg(Reg.vint(0).rclass)
        y = b.addi(x, 1)       # uses x (upward exposed), defs y
        z = b.addi(y, 1)       # uses y (already defined here), defs z
        b.ret()
        use, defs = block_use_def(b.function.entry.instructions)
        assert x in use and y not in use
        assert {y, z} <= defs

    def test_def_then_use_not_exposed(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        y = b.addi(x, 1)
        b.ret()
        use, defs = block_use_def(b.function.entry.instructions)
        assert use == set()
        assert x in defs and y in defs


class TestLiveness:
    def test_loop_variable_live_around_backedge(self):
        fn = single_loop()
        live = compute_liveness(fn)
        # the induction variable is the copy_to target in entry; find it as
        # the register used by cmp_lt in head
        cmp_inst = fn.block("head").instructions[0]
        iv = cmp_inst.srcs[0]
        assert iv in live.live_in("head")
        assert iv in live.live_out("body")
        assert iv in live.live_in("exit")

    def test_dead_after_last_use(self):
        fn = single_loop()
        live = compute_liveness(fn)
        # the cmp result is consumed by the cbr inside head, dead outside
        cmp_dest = fn.block("head").instructions[0].dest
        assert cmp_dest not in live.live_out("head")
        assert cmp_dest not in live.live_in("head")

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_matches_naive_liveness(self, shape):
        fn = shape()
        live = compute_liveness(fn)
        reference = naive_live_in(fn)
        for label in fn.reverse_postorder():
            assert live.live_in(label) == reference[label], (fn.name, label)

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_nothing_live_into_entry_except_params(self, shape):
        """Well-formed functions define every register before use, so no
        register is live into the entry block."""
        fn = shape()
        live = compute_liveness(fn)
        assert live.live_in(fn.entry.label) == set()


class TestScanBlock:
    def test_point_liveness_matches_block_boundaries(self):
        fn = single_loop()
        live = compute_liveness(fn)
        for blk in fn.blocks:
            if not blk.instructions:
                continue
            _inst, at_top = next(iter(live.scan_block(blk.label)))
            assert at_top == live.live_in(blk.label)

    def test_point_liveness_after_def(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        y = b.addi(x, 2)
        b.out(y)
        b.ret()
        fn = b.finish()
        live = compute_liveness(fn)
        points = [at for _inst, at in live.scan_block("entry")]
        # before the addi, x is live; after it (before out), only y
        assert x in points[1]
        assert y in points[2] and x not in points[2]

    def test_scan_yields_every_instruction_in_order(self):
        fn = single_loop()
        live = compute_liveness(fn)
        for blk in fn.blocks:
            insts = [inst for inst, _at in live.scan_block(blk.label)]
            assert insts == blk.instructions

    def test_bit_variant_agrees_with_set_variant(self):
        fn = single_loop()
        live = compute_liveness(fn)
        for blk in fn.blocks:
            for (i1, at), (i2, bits) in zip(live.scan_block(blk.label),
                                            live.scan_block_bits(blk.label)):
                assert i1 is i2
                assert live.index.to_set(bits) == at


class TestLiveAtInstructionDeprecated:
    def test_warns_and_is_not_reexported(self):
        # the helper survives in its home module (deprecated) but is no
        # longer part of the package surface
        import repro.analysis
        from repro.analysis.liveness import live_at_instruction

        assert not hasattr(repro.analysis, "live_at_instruction")
        fn = single_loop()
        live = compute_liveness(fn)
        blk = fn.blocks[0]
        with pytest.deprecated_call():
            at = live_at_instruction(fn, live, blk.label, 0)
        assert at == live.live_in(blk.label)


class TestRegIndexViews:
    def test_roundtrip_through_bitsets(self):
        fn = single_loop()
        index = RegIndex.for_function(fn)
        regs = fn.all_regs()
        assert index.to_set(index.from_set(regs)) == regs
        assert len(index) == len(regs)

    def test_liveness_bits_match_sets(self):
        fn = single_loop()
        live = compute_liveness(fn)
        for blk in fn.blocks:
            assert live.index.to_set(
                live.live_in_bits(blk.label)) == live.live_in(blk.label)
            assert live.index.to_set(
                live.live_out_bits(blk.label)) == live.live_out(blk.label)
