"""Tests for def-use site collection."""

from repro.analysis import compute_def_use
from repro.ir import IRBuilder

from ..helpers import single_loop


class TestDefUse:
    def test_counts_defs_and_uses(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        y = b.add(x, x)
        b.out(y)
        b.ret()
        du = compute_def_use(b.finish())
        assert len(du.defs_of(x)) == 1
        assert len(du.uses_of(x)) == 2       # both add operands
        assert len(du.uses_of(y)) == 1

    def test_sites_point_at_instructions(self):
        fn = single_loop()
        du = compute_def_use(fn)
        for reg in du.regs():
            for site in du.defs_of(reg):
                inst = fn.block(site.block).instructions[site.index]
                assert reg in inst.dests
            for site in du.uses_of(reg):
                inst = fn.block(site.block).instructions[site.index]
                assert reg in inst.srcs

    def test_unused_reg_has_no_uses(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        b.ret()
        du = compute_def_use(b.finish())
        assert du.uses_of(x) == []
        assert len(du.defs_of(x)) == 1
