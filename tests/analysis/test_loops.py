"""Tests for natural loops and nesting depth."""

from repro.analysis import (compute_dominance, compute_loops, find_back_edges)

from ..helpers import diamond, if_in_loop, nested_loops, single_loop


class TestBackEdges:
    def test_diamond_has_none(self):
        fn = diamond()
        assert find_back_edges(fn, compute_dominance(fn)) == []

    def test_single_loop_backedge(self):
        fn = single_loop()
        edges = find_back_edges(fn, compute_dominance(fn))
        assert edges == [("body", "head")]

    def test_nested_loops_have_two(self):
        fn = nested_loops()
        edges = set(find_back_edges(fn, compute_dominance(fn)))
        assert edges == {("ibody", "ihead"), ("iexit", "ohead")}


class TestLoopBodies:
    def test_single_loop_body(self):
        info = compute_loops(single_loop())
        loop = info.loops["head"]
        assert loop.body == {"head", "body"}
        assert loop.latches == {"body"}
        assert loop.depth == 1
        assert loop.parent is None

    def test_nested_bodies_and_parents(self):
        info = compute_loops(nested_loops())
        outer = info.loops["ohead"]
        inner = info.loops["ihead"]
        assert inner.body < outer.body
        assert inner.parent == "ohead"
        assert outer.parent is None
        assert outer.depth == 1 and inner.depth == 2

    def test_if_in_loop_body_includes_diamond(self):
        info = compute_loops(if_in_loop())
        loop = info.loops["head"]
        assert {"body", "then", "els", "latch"} <= loop.body


class TestDepths:
    def test_depths_outside_loops_are_zero(self):
        info = compute_loops(nested_loops())
        assert info.depth["entry"] == 0
        assert info.depth["oexit"] == 0

    def test_nested_depths(self):
        info = compute_loops(nested_loops())
        assert info.depth["ohead"] == 1
        assert info.depth["oibody"] == 1
        assert info.depth["ihead"] == 2
        assert info.depth["ibody"] == 2
        assert info.depth["iexit"] == 1

    def test_loop_of_returns_innermost(self):
        info = compute_loops(nested_loops())
        assert info.loop_of("ibody").header == "ihead"
        assert info.loop_of("oibody").header == "ohead"
        assert info.loop_of("entry") is None

    def test_blocks_at_depth(self):
        info = compute_loops(nested_loops())
        assert "ibody" in info.blocks_at_depth(2)
        assert "entry" in info.blocks_at_depth(0)
