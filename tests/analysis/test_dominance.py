"""Tests for dominators and dominance frontiers."""

import pytest

from repro.analysis import (compute_dominance, iterated_dominance_frontier)

from ..helpers import (ALL_SHAPES, diamond, naive_dominators, nested_loops,
                       single_loop)


class TestIdom:
    def test_entry_is_its_own_idom(self):
        dom = compute_dominance(diamond())
        assert dom.idom["entry"] == "entry"

    def test_diamond_idoms(self):
        dom = compute_dominance(diamond())
        assert dom.idom["left"] == "entry"
        assert dom.idom["right"] == "entry"
        assert dom.idom["join"] == "entry"

    def test_loop_idoms(self):
        dom = compute_dominance(single_loop())
        assert dom.idom["head"] == "entry"
        assert dom.idom["body"] == "head"
        assert dom.idom["exit"] == "head"

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_matches_naive_dominators(self, shape):
        fn = shape()
        dom = compute_dominance(fn)
        reference = naive_dominators(fn)
        for label in dom.rpo:
            assert set(dom.dominators_of(label)) == reference[label], label

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_dominates_predicate_agrees(self, shape):
        fn = shape()
        dom = compute_dominance(fn)
        reference = naive_dominators(fn)
        for a in dom.rpo:
            for b in dom.rpo:
                assert dom.dominates(a, b) == (a in reference[b]), (a, b)


class TestDominatorTree:
    def test_children_partition_non_roots(self):
        fn = nested_loops()
        dom = compute_dominance(fn)
        seen = []
        for kids in dom.children.values():
            seen.extend(kids)
        non_roots = [label for label in dom.rpo if dom.idom[label] != label]
        assert sorted(seen) == sorted(non_roots)

    def test_preorder_visits_parents_first(self):
        fn = nested_loops()
        dom = compute_dominance(fn)
        order = dom.dom_tree_preorder()
        pos = {label: i for i, label in enumerate(order)}
        for label in dom.rpo:
            if dom.idom[label] != label:
                assert pos[dom.idom[label]] < pos[label]

    def test_preorder_covers_all_blocks(self):
        fn = nested_loops()
        dom = compute_dominance(fn)
        assert sorted(dom.dom_tree_preorder()) == sorted(dom.rpo)


class TestFrontiers:
    def test_diamond_frontier(self):
        dom = compute_dominance(diamond())
        assert dom.frontier["left"] == {"join"}
        assert dom.frontier["right"] == {"join"}
        assert dom.frontier["join"] == set()
        assert dom.frontier["entry"] == set()

    def test_loop_header_in_own_frontier(self):
        """A loop header is in the frontier of its latch — and of itself
        when it dominates the latch (it does in a natural loop)."""
        dom = compute_dominance(single_loop())
        assert "head" in dom.frontier["body"]
        assert "head" in dom.frontier["head"]

    def test_frontier_definition_holds(self):
        """b in DF(a) iff a dominates a predecessor of b but not strictly b."""
        for shape in ALL_SHAPES:
            fn = shape()
            dom = compute_dominance(fn)
            preds = fn.predecessors_map()
            for a in dom.rpo:
                expected = set()
                for b in dom.rpo:
                    dominates_pred = any(
                        p in dom.idom and dom.dominates(a, p)
                        for p in preds[b])
                    if dominates_pred and not dom.strictly_dominates(a, b):
                        expected.add(b)
                assert dom.frontier[a] == expected, (fn.name, a)


class TestIteratedFrontier:
    def test_idf_of_entry_def_is_empty_in_straightline(self):
        fn = diamond()
        dom = compute_dominance(fn)
        assert iterated_dominance_frontier(dom, {"entry"}) == set()

    def test_idf_includes_join_for_branch_defs(self):
        fn = diamond()
        dom = compute_dominance(fn)
        assert iterated_dominance_frontier(dom, {"left"}) == {"join"}

    def test_idf_iterates(self):
        fn = single_loop()
        dom = compute_dominance(fn)
        # a def in body reaches head (the join of the back edge)
        idf = iterated_dominance_frontier(dom, {"body"})
        assert "head" in idf
