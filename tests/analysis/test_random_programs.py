"""Analyses checked against naive references on random programs.

The fixed CFG shapes in :mod:`tests.helpers` pin known answers; these
hypothesis tests sweep arbitrary generated control flow.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import (compute_dominance, compute_liveness,
                            compute_loops, compute_postdominance)
from repro.benchsuite import GeneratorConfig, random_program

from ..helpers import naive_dominators, naive_live_in

SHAPES = GeneratorConfig(n_vars=4, max_depth=3, max_stmts=4)

common = settings(max_examples=25, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


@common
@given(seed=st.integers(0, 10_000))
def test_dominance_matches_naive(seed):
    fn = random_program(seed, SHAPES)
    dom = compute_dominance(fn)
    reference = naive_dominators(fn)
    for label in dom.rpo:
        assert set(dom.dominators_of(label)) == reference[label]


@common
@given(seed=st.integers(0, 10_000))
def test_liveness_matches_naive(seed):
    fn = random_program(seed, SHAPES)
    live = compute_liveness(fn)
    reference = naive_live_in(fn)
    for label in fn.reverse_postorder():
        assert live.live_in(label) == reference[label]


@common
@given(seed=st.integers(0, 10_000))
def test_loop_depths_are_consistent(seed):
    """Each loop's body blocks have depth >= the loop's own depth, and
    headers dominate every block of their body."""
    fn = random_program(seed, SHAPES)
    dom = compute_dominance(fn)
    loops = compute_loops(fn, dom)
    for loop in loops.loops.values():
        for label in loop.body:
            assert loops.depth[label] >= loop.depth
            assert dom.dominates(loop.header, label)


@common
@given(seed=st.integers(0, 10_000))
def test_postdominance_exit_blocks(seed):
    """Blocks ending in ret postdominate themselves and the virtual exit
    postdominates everything (transitively: every block reaches a ret)."""
    from repro.ir import Opcode
    fn = random_program(seed, SHAPES)
    pdom = compute_postdominance(fn)
    rets = [b.label for b in fn.blocks
            if b.is_terminated and b.terminator.opcode is Opcode.RET]
    assert rets
    for label in rets:
        assert pdom.postdominates(label, label)


@common
@given(seed=st.integers(0, 10_000))
def test_dominator_tree_parents_strictly_dominate(seed):
    fn = random_program(seed, SHAPES)
    dom = compute_dominance(fn)
    for label in dom.rpo:
        parent = dom.idom[label]
        if parent != label:
            assert dom.strictly_dominates(parent, label)
