"""The seeded chaos suite: real backend processes, injected faults.

The contract under fire: every admitted request is answered exactly
once (the strict request/response protocol plus router failover) or
failed with a typed error; every answer is byte-identical to a
fault-free run; and the cluster returns to full health afterwards.
"""

import json
import socket
import threading
import time
from concurrent import futures

from repro.engine import ExperimentEngine, ServeFaultPlan, request_key
from repro.ir import function_to_text
from repro.serve import (ClusterConfig, ClusterHarness, HashRing,
                         ResilientClient, RouterConfig, ServeClient,
                         ServerThread, dumps, protocol,
                         request_from_json, summary_to_json)
from repro.serve.router import RouterThread

from ..helpers import single_loop

LOOP_TEXT = function_to_text(single_loop())
VIRTUAL_NODES = 32


def spec(n: int) -> dict:
    return {"ir_text": LOOP_TEXT, "int_regs": 4, "args": [n]}


def key_of(s: dict) -> str:
    return request_key(request_from_json(s))


def fault_free_answers(corpus: list[dict]) -> list[str]:
    engine = ExperimentEngine(jobs=1, use_cache=False)
    outcomes = engine.run_many([request_from_json(s) for s in corpus])
    return [dumps(summary_to_json(o)) for o in outcomes]


def router_config(**overrides) -> RouterConfig:
    base = dict(virtual_nodes=VIRTUAL_NODES, ping_interval=0.05,
                ping_timeout=1.0, breaker_base=0.02, breaker_cap=0.5,
                failover_attempts=2)
    base.update(overrides)
    return RouterConfig(**base)


def wait_for_health(port: int, want: int, timeout: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        with ServeClient("127.0.0.1", port, timeout=10) as probe:
            pong = probe.call("ping")
        if pong.get("healthy", 0) >= want:
            return pong
        assert time.monotonic() < deadline, \
            f"cluster stuck at {pong} before recovering to {want}"
        time.sleep(0.05)


def test_killed_dropped_and_garbled_backends_still_answer_exactly_once(
        tmp_path):
    """Kill both backends mid-request (plus one vanished and one
    corrupted reply): the router fails the work over, the supervisor
    restarts the corpses, every answer matches the fault-free run, and
    the cluster ends at full health."""
    corpus = [spec(n) for n in range(8)]
    expected = fault_free_answers(corpus)

    # pick one kill victim per backend, by the router's own ring
    ring = HashRing(["b0", "b1"], virtual_nodes=VIRTUAL_NODES)
    by_primary: dict[str, list[dict]] = {"b0": [], "b1": []}
    for s in corpus:
        by_primary[ring.primary(protocol.dumps(s))].append(s)
    assert by_primary["b0"] and by_primary["b1"], \
        "corpus must land work on both backends"
    kill_specs = [by_primary["b0"][0], by_primary["b1"][0]]
    survivors = [s for s in corpus if s not in kill_specs]
    drop_spec, garble_spec = survivors[0], survivors[1]

    state_dir = tmp_path / "faults"
    plan = ServeFaultPlan(
        state_dir=str(state_dir),
        kill_keys=frozenset(key_of(s) for s in kill_specs),
        drop_keys=frozenset({key_of(drop_spec)}),
        garble_keys=frozenset({key_of(garble_spec)}))
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(plan.to_json()))

    cluster_config = ClusterConfig(
        backends=2, jobs=1, cache_dir=tmp_path / "cache",
        serve_faults=plan_path,
        extra_args=("--batch-window", "0.001"))
    with ClusterHarness(cluster_config, router_config()) as cluster:
        client = ResilientClient("127.0.0.1", cluster.port,
                                 max_retries=12, backoff=0.05)
        with futures.ThreadPoolExecutor(len(corpus)) as pool:
            answers = list(pool.map(
                lambda s: dumps(client.allocate(**s)), corpus))

        # survivors (and retried victims) byte-identical to fault-free
        assert answers == expected

        # each injected fault fired exactly once, across restarts too
        assert plan.claimed("kill") == 2
        assert plan.claimed("drop") == 1
        assert plan.claimed("garble") == 1

        # both corpses were replaced and the cluster is whole again
        deadline = time.monotonic() + 60
        while cluster.supervisor.restarts < 2:
            assert time.monotonic() < deadline
            time.sleep(0.05)
        pong = wait_for_health(cluster.port, want=2)
        assert pong["backends"] == 2

        with ServeClient("127.0.0.1", cluster.port) as probe:
            counters = probe.metrics()["counters"]
        # kills + drop + garble each forced at least one failover
        assert counters["router.failovers"] >= 4
        assert counters["router.backend_restarts"] >= 2
        # and the cluster still answers the whole corpus afterwards
        again = [dumps(client.allocate(**s)) for s in corpus]
        assert again == expected


def test_hung_accept_loop_trips_the_breaker_then_recovers(tmp_path):
    """A wedged accept loop answers nothing new: only the router's
    fresh-connection probes can see it.  The breaker opens, the hang
    clears, probes re-admit the backend."""
    state_dir = tmp_path / "faults"
    plan = ServeFaultPlan(state_dir=str(state_dir),
                          hang_accept={"b0": 2.0})
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(plan.to_json()))

    cluster_config = ClusterConfig(
        backends=2, jobs=1, cache_dir=tmp_path / "cache",
        serve_faults=plan_path)
    # ClusterHarness.__enter__ already waits for full health, so the
    # breaker has opened and recovered by the time we get the port
    with ClusterHarness(cluster_config,
                        router_config(ping_timeout=0.3)) as cluster:
        assert plan.claimed("hang") == 1
        router = cluster.router
        assert router is not None
        counters = router.metrics.counters()
        assert counters["router.failed_probes"] >= 1
        assert counters["router.backend_recoveries"] >= 2
        state = router.backends["b0"]
        assert state.healthy and state.probes_failed >= 1

        client = ResilientClient("127.0.0.1", cluster.port,
                                 max_retries=8, backoff=0.05)
        corpus = [spec(n) for n in range(4)]
        assert [dumps(client.allocate(**s)) for s in corpus] \
            == fault_free_answers(corpus)


def test_slow_loris_client_does_not_starve_normal_traffic():
    """A connection trickling a never-finished request line must cost
    the router nothing: requests on other connections keep answering."""
    corpus = [spec(n) for n in range(3)]
    expected = fault_free_answers(corpus)
    with ServerThread(ExperimentEngine(jobs=1, use_cache=False)) as srv:
        backends = {"b0": ("127.0.0.1", srv.port)}
        with RouterThread(backends, router_config()) as rt:
            loris = socket.create_connection(("127.0.0.1", rt.port),
                                             timeout=30)
            stop = threading.Event()

            def trickle() -> None:
                fragment = b'{"v": 2, "id": "loris", "op": "allo'
                for byte in fragment:
                    if stop.is_set():
                        return
                    try:
                        loris.sendall(bytes([byte]))
                    except OSError:
                        return
                    time.sleep(0.02)

            drip = threading.Thread(target=trickle)
            drip.start()
            try:
                with ServeClient("127.0.0.1", rt.port) as client:
                    answers = [dumps(client.allocate(**s))
                               for s in corpus]
                assert answers == expected
            finally:
                stop.set()
                drip.join(timeout=10)
                loris.close()
