"""``repro serve`` end to end: announce, answer, drain on SIGTERM."""

import signal
import subprocess
import sys
import threading
import time

from repro.engine import ExperimentEngine
from repro.serve import (ServeClient, dumps, request_from_json,
                         summary_to_json)

SPEC = {"kernel": "zeroin", "int_regs": 8, "mode": "remat"}


def test_serve_smoke(tmp_path):
    """One server process on an ephemeral port: an allocation request
    answers byte-for-byte like the batch engine, a trace request
    answers, and SIGTERM drains the in-flight request before exit 0."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "1", "--cache-dir", str(tmp_path / "cache")],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        announce = proc.stdout.readline().strip()
        assert announce.startswith("# serving on ")
        port = int(announce.rsplit(":", 1)[1])

        with ServeClient("127.0.0.1", port, timeout=120) as client:
            assert client.ping()

            served = client.allocate(**SPEC)
            local = ExperimentEngine(jobs=1, use_cache=False).run_many(
                [request_from_json(SPEC)])[0]
            assert dumps(served) == dumps(summary_to_json(local))
            # warm repeat (memo hit) answers the identical bytes
            assert dumps(client.allocate(**SPEC)) == dumps(served)

            trace_text = client.trace(**SPEC)
            assert trace_text.splitlines()[0].startswith(
                '{"type": "meta"')

            # drain: fire a request, SIGTERM the server before the
            # reply, and require both the answer and a clean exit
            drained = {}

            def in_flight():
                drained["result"] = client.allocate(
                    kernel="fehl", int_regs=8)

            worker = threading.Thread(target=in_flight)
            with ServeClient("127.0.0.1", port, timeout=120) as probe:
                before = probe.metrics()["counters"]["serve.op.allocate"]
                worker.start()
                # wait until the server has *received* the request, so
                # the SIGTERM provably races the execution, not the read
                deadline = time.monotonic() + 60
                while probe.metrics()["counters"][
                        "serve.op.allocate"] <= before:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
            proc.send_signal(signal.SIGTERM)
            worker.join(timeout=120)
            assert drained["result"]["function"] == "fehl"

        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()
        proc.stderr.close()


def test_cluster_drains_under_load(tmp_path):
    """``repro serve --backends 2``: the router answers through both
    backends, and SIGTERM mid-request drains the whole cluster — the
    in-flight request is answered, every backend exits, exit code 0."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--backends", "2", "--jobs", "1",
         "--cache-dir", str(tmp_path / "cache")],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        announce = proc.stdout.readline().strip()
        assert announce.startswith("# serving on ")
        port = int(announce.rsplit(":", 1)[1])

        with ServeClient("127.0.0.1", port, timeout=120) as client:
            # the router announces before its first health probes land
            deadline = time.monotonic() + 60
            while client.call("ping")["healthy"] < 2:
                assert time.monotonic() < deadline
                time.sleep(0.05)

            served = client.allocate(**SPEC)
            local = ExperimentEngine(jobs=1, use_cache=False).run_many(
                [request_from_json(SPEC)])[0]
            assert dumps(served) == dumps(summary_to_json(local))

            drained = {}

            def in_flight():
                drained["result"] = client.allocate(
                    kernel="fehl", int_regs=8)

            worker = threading.Thread(target=in_flight)
            with ServeClient("127.0.0.1", port, timeout=120) as probe:
                # the merged snapshot sums backend-side admission
                # counters, which tick before execution — so the
                # SIGTERM provably races the backend execution
                before = probe.metrics()["counters"].get(
                    "serve.op.allocate", 0)
                worker.start()
                deadline = time.monotonic() + 60
                while probe.metrics()["counters"].get(
                        "serve.op.allocate", 0) <= before:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
            proc.send_signal(signal.SIGTERM)
            worker.join(timeout=120)
            assert drained["result"]["function"] == "fehl"

        assert proc.wait(timeout=120) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()
        proc.stderr.close()
