"""End-to-end service observability: stitched cross-process traces,
the access log, the flight recorder, and quantile agreement."""

import json
import pathlib

import pytest

from repro.engine import (ExperimentEngine, FaultPlan, WorkerPool,
                          request_key)
from repro.ir import function_to_text
from repro.obs import Span, bucket_index
from repro.serve import (FlightRecorder, RequestRecord, ServeClient,
                         ServeConfig, ServerThread, access_line, dumps,
                         request_from_json, run_load,
                         stitch_request_trace, summary_to_json)

from ..helpers import single_loop

LOOP_TEXT = function_to_text(single_loop())
FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def spec(n: int = 0) -> dict:
    return {"ir_text": LOOP_TEXT, "int_regs": 4, "args": [n]}


def assert_well_nested(span: dict, lo: float | None = None,
                       hi: float | None = None) -> None:
    """Every span's window is ordered and inside its parent's."""
    assert span["start"] <= span["end"], span["name"]
    if lo is not None:
        assert span["start"] >= lo, span["name"]
    if hi is not None:
        assert span["end"] <= hi, span["name"]
    for child in span["children"]:
        assert_well_nested(child, span["start"], span["end"])


def siblings_ordered(spans: list[dict]) -> bool:
    """Sibling windows appear in start order and do not overlap."""
    for before, after in zip(spans, spans[1:]):
        if after["start"] < before["end"]:
            return False
    return True


def golden_record() -> RequestRecord:
    return RequestRecord(
        request_id="r000042", wall_time=1754500000.25, op="allocate",
        client_id="c7", client="tenant-7", key="allocate:deadbeef",
        allocator="iterated", outcome="ok",
        dedup=False, source="executed", attempts=2, retries=1,
        cache_put_s=0.000125, t_accept=100.0, t_parse=100.001,
        t_admit=100.0015, t_dequeue=100.002, t_dispatch=100.0065,
        t_execute=100.0465, t_respond=100.0467)


class TestRecord:
    def test_phases_are_contiguous_and_sum_to_total(self):
        record = golden_record()
        phases = record.phase_seconds()
        assert list(phases) == ["parse", "admission", "queue_wait",
                                "batch_wait", "execute", "respond"]
        assert sum(phases.values()) == pytest.approx(record.total_s,
                                                     abs=1e-12)

    def test_unreached_phases_collapse_to_zero(self):
        # a rejected request: parsed, then answered — no queue, no batch
        record = RequestRecord(request_id="r1", t_accept=10.0,
                               t_parse=10.002, t_respond=10.003,
                               outcome="overload")
        phases = record.phase_seconds()
        assert phases["parse"] == pytest.approx(0.002)
        assert phases["queue_wait"] == 0.0
        assert phases["execute"] == 0.0
        assert phases["respond"] == pytest.approx(0.001)
        assert sum(phases.values()) == pytest.approx(record.total_s)

    def test_access_line_matches_golden(self):
        golden = (FIXTURES / "access_line.golden").read_text().strip()
        assert access_line(golden_record()) == golden

    def test_stitch_grafts_engine_spans_under_execute(self):
        record = golden_record()
        # an attempt protruding past the execute window gets clamped
        record.spans = [Span("attempt", {"number": 1},
                             start=100.006, end=100.050)]
        root = stitch_request_trace(record)
        assert root.name == "request"
        assert [c.name for c in root.children] == [
            "parse", "admission", "queue_wait", "batch_wait",
            "execute", "respond"]
        execute = root.child("execute")
        attempt, = execute.children
        assert attempt.start >= execute.start
        assert attempt.end <= execute.end
        assert_well_nested(json.loads(dumps(_payload(root))))

    def test_flight_recorder_bounds_and_ordering(self):
        recorder = FlightRecorder(slots=2)
        for n, total in enumerate((0.03, 0.01, 0.05, 0.02)):
            recorder.record(RequestRecord(
                request_id=f"r{n}", op="allocate", t_accept=0.0,
                t_respond=total))
        for n in range(3):
            recorder.record(RequestRecord(
                request_id=f"f{n}", op="allocate", outcome="failed",
                t_accept=0.0, t_respond=0.001))
        dump = recorder.dump()
        assert dump["recorded"] == 7
        slowest = [e["access"]["total_s"] for e in dump["slowest"]]
        assert slowest == [0.05, 0.03]  # slowest first, bounded at 2
        assert [e["access"]["id"] for e in dump["failures"]] == \
            ["f1", "f2"]  # most recent failures, bounded at 2


def _payload(span: Span) -> dict:
    from repro.obs import span_to_payload

    return span_to_payload(span)


@pytest.fixture(scope="module")
def served():
    """One pooled server handling a mixed workload, then drained; the
    artifacts (responses, metrics, debug dump, access log) are what
    the tests pick over."""
    import tempfile

    out = {}
    with tempfile.TemporaryDirectory() as tmpdir:
        log_path = pathlib.Path(tmpdir) / "access.jsonl"
        dump_path = pathlib.Path(tmpdir) / "flight.json"
        pool = WorkerPool(2)
        engine = ExperimentEngine(jobs=2, use_cache=False, pool=pool)
        config = ServeConfig(access_log=log_path,
                             flight_dump=dump_path)
        try:
            with ServerThread(engine, config) as srv:
                with ServeClient("127.0.0.1", srv.port) as client:
                    out["first"] = client.allocate(**spec(3))
                    out["repeat"] = client.allocate(**spec(3))  # memo
                    out["second"] = client.allocate(**spec(5))
                    client.ping()
                    with pytest.raises(Exception):
                        client.call("allocate", {})  # bad_request
                    out["metrics"] = client.metrics()
                    out["debug"] = client.debug()
            out["access"] = [json.loads(line)
                             for line in log_path.read_text().splitlines()]
            out["flight_dump"] = json.loads(dump_path.read_text())
        finally:
            pool.close()
    return out


class TestServedTraces:
    def test_stitched_trace_well_nested_across_worker_boundary(
            self, served):
        executed = [entry for entry in served["debug"]["slowest"]
                    if entry["access"]["source"] == "executed"]
        assert executed, "no executed request reached the recorder"
        for entry in executed:
            trace = entry["trace"]
            assert trace["name"] == "request"
            assert_well_nested(trace)
            phases = trace["children"]
            assert [p["name"] for p in phases] == [
                "parse", "admission", "queue_wait", "batch_wait",
                "execute", "respond"]
            assert siblings_ordered(phases)
            execute = phases[4]
            attempts = [c for c in execute["children"]
                        if c["name"] == "attempt"]
            assert attempts and siblings_ordered(attempts)
            # the worker-side exec subtree crossed the pipe and was
            # rebased into the server's clock
            exec_span, = [c for c in attempts[-1]["children"]
                          if c["name"] == "exec"]
            worker_phases = [c["name"] for c in exec_span["children"]]
            assert "parse" in worker_phases
            assert "allocate" in worker_phases

    def test_memo_hit_records_its_source(self, served):
        memo_lines = [line for line in served["access"]
                      if line["source"] == "memo"]
        assert len(memo_lines) == 1
        assert memo_lines[0]["attempts"] == 0

    def test_served_summary_byte_identical_to_local_run(self, served):
        local = ExperimentEngine(jobs=1, use_cache=False).run(
            request_from_json(spec(3)))
        assert dumps(served["first"]) == dumps(summary_to_json(local))
        assert dumps(served["repeat"]) == dumps(summary_to_json(local))

    def test_access_log_phases_sum_to_total(self, served):
        assert len(served["access"]) == 7
        for line in served["access"]:
            total = line["total_s"]
            phase_sum = sum(line["phases"].values())
            # rounding puts a few microseconds of slack on tiny lines
            assert phase_sum == pytest.approx(
                total, rel=0.05, abs=1e-5), line

    def test_access_log_covers_every_request(self, served):
        ops = [line["op"] for line in served["access"]]
        assert ops.count("allocate") == 4
        assert "ping" in ops and "metrics" in ops
        bad, = [line for line in served["access"]
                if line["outcome"] == "bad_request"]
        assert bad["op"] == "allocate"

    def test_bad_request_lands_in_flight_recorder_failures(
            self, served):
        failures = served["debug"]["failures"]
        assert [f["access"]["outcome"] for f in failures] == \
            ["bad_request"]

    def test_metrics_expose_request_quantiles(self, served):
        latency = served["metrics"]["histograms"][
            "serve.request_seconds"]
        assert latency["count"] == 4  # 3 ok + the rejected allocate
        assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]
        for phase in ("parse", "admission", "queue_wait", "batch_wait",
                      "execute", "respond"):
            assert served["metrics"]["histograms"][
                f"serve.phase.{phase}"]["count"] == 4

    def test_flight_dump_written_on_drain(self, served):
        assert served["flight_dump"]["slowest"]
        assert served["flight_dump"]["recorded"] == 4


class TestRetriedRequest:
    def test_retries_appear_as_sibling_attempt_spans(self, tmp_path):
        request = request_from_json(spec(2))
        key = request_key(request)
        plan = FaultPlan(worker_faults={(key, 1): "raise"})
        log_path = tmp_path / "access.jsonl"
        pool = WorkerPool(1, plan)
        engine = ExperimentEngine(jobs=1, use_cache=False,
                                  fault_plan=plan, pool=pool)
        try:
            with ServerThread(engine,
                              ServeConfig(access_log=log_path)) as srv:
                with ServeClient("127.0.0.1", srv.port) as client:
                    result = client.allocate(**spec(2))
                    debug = client.debug()
        finally:
            pool.close()
        assert result["key"] == key
        line = json.loads(log_path.read_text().splitlines()[0])
        assert line["attempts"] == 2
        assert line["retries"] == 1
        entry, = debug["slowest"]
        execute = entry["trace"]["children"][4]
        attempts = [c for c in execute["children"]
                    if c["name"] == "attempt"]
        assert [a["attrs"]["number"] for a in attempts] == [1, 2]
        assert [a["attrs"]["outcome"] for a in attempts] == \
            ["exception", "ok"]
        assert siblings_ordered(attempts)
        assert_well_nested(entry["trace"])


class TestQuantileAgreement:
    def test_server_quantiles_within_one_bucket_of_loadgen(self):
        # unique requests (distinct args -> distinct keys) so every
        # latency is a real execution, well clear of socket overhead
        corpus = [spec(2000 + n) for n in range(10)]
        engine = ExperimentEngine(jobs=1, use_cache=False)
        with ServerThread(engine, ServeConfig()) as srv:
            report = run_load("127.0.0.1", srv.port, corpus,
                              clients=2, total_requests=len(corpus))
            with ServeClient("127.0.0.1", srv.port) as client:
                snapshot = client.metrics()
        assert report.ok == len(corpus)
        latency = snapshot["histograms"]["serve.request_seconds"]
        for q, name in ((50, "p50"), (99, "p99")):
            client_side = report.latency_ms(q) / 1000.0
            server_side = latency[name]
            assert abs(bucket_index(client_side)
                       - bucket_index(server_side)) <= 1, \
                (q, client_side, server_side)


class TestTracingDisabled:
    def test_no_request_tracing_still_stamps_lifecycle(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        engine = ExperimentEngine(jobs=1, use_cache=False)
        config = ServeConfig(trace_requests=False, access_log=log_path)
        with ServerThread(engine, config) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                client.allocate(**spec(1))
                debug = client.debug()
        line = json.loads(log_path.read_text().splitlines()[0])
        assert line["outcome"] == "ok"
        assert line["source"] is None  # no engine observation taken
        assert sum(line["phases"].values()) == pytest.approx(
            line["total_s"], rel=0.05, abs=1e-5)
        entry, = debug["slowest"]
        execute = entry["trace"]["children"][4]
        assert execute["children"] == []  # no stitched subtree
