"""The ``repro top`` dashboard: rendering and the polling loop."""

import json

from repro.engine import ExperimentEngine
from repro.ir import function_to_text
from repro.serve import (ServeClient, ServeConfig, ServerThread,
                         format_seconds, render_dashboard)
from repro.serve.top import run_top

from ..helpers import single_loop

LOOP_TEXT = function_to_text(single_loop())


def snapshot(requests: int = 10, executed: int = 4) -> dict:
    return {
        "counters": {
            "serve.requests": requests,
            "serve.deduplicated": 2,
            "serve.batches": 3,
            "engine.memo_hits": 4,
            "engine.cache_hits": 2,
            "engine.executed": executed,
            "pool.size": 2, "pool.spawned": 2, "pool.reused": 7,
        },
        "histograms": {
            "serve.request_seconds": {
                "count": 10, "total": 0.5, "min": 0.01, "max": 0.2,
                "p50": 0.04, "p90": 0.1, "p99": 0.2},
            "serve.batch_size": {"count": 3, "total": 9.0,
                                 "min": 1.0, "max": 5.0},
            "serve.phase.execute": {
                "count": 10, "total": 0.4, "min": 0.01, "max": 0.15,
                "p50": 0.03, "p90": 0.09, "p99": 0.15},
        },
        "queue_depth": 1,
        "inflight": 2,
    }


class TestFormatSeconds:
    def test_unit_selection(self):
        assert format_seconds(17e-6) == "17µs"
        assert format_seconds(0.0042) == "4.2ms"
        assert format_seconds(1.31) == "1.31s"


class TestRenderDashboard:
    def test_renders_every_section(self):
        text = render_dashboard(snapshot())
        assert "requests" in text and "10" in text
        assert "p50 40.0ms" in text
        assert "p99 200.0ms" in text
        assert "1 queued" in text and "2 in flight" in text
        assert "dedup 2" in text
        assert "avg size 3.0" in text
        assert "hit ratio 60%" in text
        assert "spawned 2" in text and "reused 7" in text
        assert "execute 30.0ms" in text

    def test_rates_derived_from_previous_snapshot(self):
        text = render_dashboard(snapshot(requests=30, executed=14),
                                previous=snapshot(), interval=2.0)
        assert "10.0 req/s" in text
        assert "5.0 exec/s" in text

    def test_no_rates_without_previous(self):
        assert "req/s" not in render_dashboard(snapshot())

    def test_empty_server_renders(self):
        text = render_dashboard({"counters": {}, "histograms": {},
                                 "queue_depth": 0, "inflight": 0})
        assert "no requests observed" in text

    def test_cluster_snapshot_grows_a_per_backend_section(self):
        merged = snapshot()
        merged["counters"].update({
            "router.forwarded": 9, "router.failovers": 1,
            "router.shed": 2, "router.throttled": 3,
            "router.backend_restarts": 1})
        merged["router"] = {
            "healthy": 1, "draining": False, "clients": 2,
            "backends": {
                "b0": {"addr": "127.0.0.1:4001", "healthy": True,
                       "inflight": 3, "breaker_open": False,
                       "consecutive_failures": 0, "probes_ok": 40,
                       "probes_failed": 0, "restarts": 0},
                "b1": {"addr": "127.0.0.1:4002", "healthy": False,
                       "inflight": 0, "breaker_open": True,
                       "consecutive_failures": 4, "probes_ok": 12,
                       "probes_failed": 4, "restarts": 1},
            }}
        text = render_dashboard(merged)
        assert "router     1/2 healthy" in text
        assert "forwarded 9" in text and "failovers 1" in text
        assert "shed 2" in text and "throttled 3" in text
        b0_line = next(l for l in text.splitlines() if "b0" in l)
        assert "up" in b0_line and "127.0.0.1:4001" in b0_line
        assert "probes 40/40" in b0_line
        b1_line = next(l for l in text.splitlines() if "b1" in l)
        assert "breaker" in b1_line and "probes 12/16" in b1_line
        assert "restarts 1" in b1_line

    def test_single_server_snapshot_has_no_router_section(self):
        assert "router" not in render_dashboard(snapshot())


class TestRunTop:
    def test_polls_a_live_server(self):
        engine = ExperimentEngine(jobs=1, use_cache=False)
        with ServerThread(engine, ServeConfig()) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                client.allocate(ir_text=LOOP_TEXT, int_regs=4, args=[2])
            frames: list[str] = []
            slept: list[float] = []
            code = run_top("127.0.0.1", srv.port, interval=0.01,
                           iterations=3, out=frames.append,
                           sleep=slept.append)
        assert code == 0
        assert len(frames) == 3
        assert slept == [0.01, 0.01]
        assert "latency" in frames[0]
        # the second frame has a previous snapshot, hence rates
        assert "req/s" in frames[1]

    def test_json_format_emits_raw_snapshots(self):
        engine = ExperimentEngine(jobs=1, use_cache=False)
        with ServerThread(engine, ServeConfig()) as srv:
            frames: list[str] = []
            run_top("127.0.0.1", srv.port, iterations=1, fmt="json",
                    out=frames.append, sleep=lambda _: None)
        parsed = json.loads(frames[0])
        assert "counters" in parsed and "histograms" in parsed

    def test_prom_format_emits_exposition(self):
        engine = ExperimentEngine(jobs=1, use_cache=False)
        with ServerThread(engine, ServeConfig()) as srv:
            frames: list[str] = []
            run_top("127.0.0.1", srv.port, iterations=1, fmt="prom",
                    out=frames.append, sleep=lambda _: None)
        assert "# TYPE repro_serve_requests_total counter" in frames[0]
