"""The async server: admission control, dedup, batching, byte-identity."""

import asyncio
import concurrent.futures
import pickle

import pytest

from repro.engine import (ExperimentEngine, FaultPlan, SupervisorConfig,
                          request_key)
from repro.ir import function_to_text
from repro.machine import machine_with
from repro.serve import (AllocationServer, ServeClient, ServeConfig,
                         ServeError, ServerThread, dumps, execute_trace,
                         request_from_json, summary_to_json)
from repro.serve.protocol import encode_line

from ..helpers import single_loop

LOOP_TEXT = function_to_text(single_loop())


def spec(n: int = 0) -> dict:
    return {"ir_text": LOOP_TEXT, "int_regs": 4, "args": [n]}


def line(op: str, n: int = 0, request_id: str = "t") -> bytes:
    return encode_line({"v": 1, "id": request_id, "op": op,
                        "request": spec(n)})


def serial_engine(**kwargs) -> ExperimentEngine:
    return ExperimentEngine(jobs=1, use_cache=False, **kwargs)


class TestAdmission:
    """Unit tests against the server object — the batcher is started
    (or not) by hand, so queue occupancy is deterministic."""

    def test_full_queue_rejects_with_overload(self):
        async def scenario():
            server = AllocationServer(serial_engine(),
                                      ServeConfig(queue_limit=1))
            first = asyncio.ensure_future(
                server._respond(line("allocate", 0)))
            await asyncio.sleep(0)          # let it occupy the queue slot
            overloaded = await server._respond(line("allocate", 1))
            assert overloaded["ok"] is False
            assert overloaded["error"]["kind"] == "overload"
            assert server.metrics.counters()[
                "serve.overload_rejections"] == 1
            # now drain: run the batcher until the first answer lands
            batcher = asyncio.ensure_future(server._batcher())
            response = await first
            assert response["ok"] is True
            await server.queue.put(None)
            await batcher

        asyncio.run(scenario())

    def test_identical_inflight_requests_share_one_execution(self):
        async def scenario():
            server = AllocationServer(serial_engine(),
                                      ServeConfig(queue_limit=1))
            first = asyncio.ensure_future(
                server._respond(line("allocate", 0, "a")))
            await asyncio.sleep(0)
            # same key: joins the in-flight future, takes no queue slot
            second = asyncio.ensure_future(
                server._respond(line("allocate", 0, "b")))
            await asyncio.sleep(0)
            assert server.metrics.counters()["serve.deduplicated"] == 1
            assert server.queue.qsize() == 1
            batcher = asyncio.ensure_future(server._batcher())
            r1, r2 = await asyncio.gather(first, second)
            assert r1["ok"] and r2["ok"]
            assert dumps(r1["result"]) == dumps(r2["result"])
            assert server.engine.stats.executed == 1
            await server.queue.put(None)
            await batcher

        asyncio.run(scenario())

    def test_draining_rejects_new_work(self):
        async def scenario():
            server = AllocationServer(serial_engine(), ServeConfig())
            server.draining = True
            response = await server._respond(line("allocate", 0))
            assert response["ok"] is False
            assert response["error"]["kind"] == "draining"

        asyncio.run(scenario())

    def test_malformed_lines_get_typed_errors(self):
        async def scenario():
            server = AllocationServer(serial_engine(), ServeConfig())
            bad_json = await server._respond(b"{nope\n")
            assert bad_json["error"]["kind"] == "bad_request"
            bad_op = await server._respond(
                encode_line({"v": 1, "id": "x", "op": "explode"}))
            assert bad_op["id"] == "x"
            assert bad_op["error"]["kind"] == "bad_request"
            bad_request = await server._respond(
                encode_line({"v": 1, "id": "y", "op": "allocate",
                             "request": {"kernel": "no-such"}}))
            assert bad_request["error"]["kind"] == "bad_request"

        asyncio.run(scenario())


class TestEndToEnd:
    """Socket-level tests through :class:`ServerThread`."""

    def test_allocate_is_byte_identical_to_run_many(self):
        with ServerThread(serial_engine()) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                served = client.allocate(**spec(0))
        local = serial_engine().run_many([request_from_json(spec(0))])[0]
        assert dumps(served) == dumps(summary_to_json(local))

    def test_trace_matches_local_trace(self):
        """Identical to a local ``execute_trace`` modulo wall-clock
        fields (span start/dur and timing histograms are live data)."""
        import json

        def normalized(text):
            lines = []
            for raw in text.splitlines():
                obj = json.loads(raw)
                if obj.get("type") == "span":
                    obj.pop("start", None)
                    obj.pop("dur", None)
                elif obj.get("type") == "metrics":
                    obj = {"type": "metrics",
                           "counters": obj.get("counters")}
                lines.append(dumps(obj))
            return lines

        with ServerThread(serial_engine()) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                served = client.trace(**spec(0))
        local = execute_trace(request_from_json(spec(0)))
        assert normalized(served) == normalized(local)
        # the identity block is fully deterministic
        meta = json.loads(served.splitlines()[0])
        assert meta["function"] == json.loads(
            local.splitlines()[0])["function"]

    def test_concurrent_clients_batch_and_agree(self):
        config = ServeConfig(batch_window=0.05, max_batch=16)
        with ServerThread(serial_engine(), config) as srv:
            def one(n):
                with ServeClient("127.0.0.1", srv.port) as client:
                    return dumps(client.allocate(**spec(n % 2)))

            with concurrent.futures.ThreadPoolExecutor(6) as pool:
                results = list(pool.map(one, range(6)))
            with ServeClient("127.0.0.1", srv.port) as client:
                metrics = client.metrics()
        locals_ = serial_engine().run_many(
            [request_from_json(spec(n % 2)) for n in range(6)])
        expected = [dumps(summary_to_json(o)) for o in locals_]
        assert results == expected
        counters = metrics["counters"]
        assert counters["serve.requests"] == 7
        # at most two distinct keys ever executed, whatever the batching
        assert counters["engine.executed"] <= 2

    def test_threads_can_share_one_client_connection(self):
        """The client lock serializes whole round-trips, so concurrent
        threads over one connection each get the answer to *their*
        request, never a neighbour's."""
        with ServerThread(serial_engine()) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                def one(n):
                    return dumps(client.allocate(**spec(n % 2)))

                with concurrent.futures.ThreadPoolExecutor(8) as pool:
                    results = list(pool.map(one, range(16)))
        locals_ = serial_engine().run_many(
            [request_from_json(spec(n % 2)) for n in range(16)])
        assert results == [dumps(summary_to_json(o)) for o in locals_]

    def test_quarantined_request_comes_back_as_typed_failure(self):
        key = request_key(request_from_json(spec(0)))
        engine = serial_engine(
            fault_plan=FaultPlan(poison=frozenset({key})),
            supervisor=SupervisorConfig(max_attempts=1, backoff=0.0))
        with ServerThread(engine) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                with pytest.raises(ServeError) as exc:
                    client.allocate(**spec(0))
                # the connection survives the failure
                assert client.ping()
        error = exc.value.error
        assert error["kind"] == "failed"
        assert error["key"] == key
        assert error["attempts"] == 1

    def test_shutdown_op_drains_and_closes(self):
        with ServerThread(serial_engine()) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                client.allocate(**spec(0))
                client.shutdown()
            srv._thread.join(timeout=30)
            assert not srv._thread.is_alive()

    def test_metrics_expose_admission_and_engine_counters(self):
        with ServerThread(serial_engine()) as srv:
            with ServeClient("127.0.0.1", srv.port) as client:
                client.allocate(**spec(0))
                client.allocate(**spec(0))   # memo hit, same bytes
                metrics = client.metrics()
        counters = metrics["counters"]
        assert counters["serve.op.allocate"] == 2
        assert counters["serve.batches"] >= 1
        assert counters["engine.executed"] == 1
        assert counters["engine.memo_hits"] == 1
        assert metrics["queue_depth"] == 0
        assert metrics["inflight"] == 0
