"""The wire protocol: request decoding, canonical serialization."""

import json

import pytest

from repro.engine import ExperimentEngine, request_key
from repro.ir import function_to_text
from repro.machine import machine_with
from repro.remat import RenumberMode
from repro.serve import (ProtocolError, RETRYABLE_KINDS, dumps,
                         request_from_json, summary_to_json)
from repro.serve.protocol import (check_envelope, decode_line,
                                  encode_line, envelope_meta,
                                  error_response, failure_to_json)

from ..helpers import single_loop

LOOP_TEXT = function_to_text(single_loop())


class TestEnvelope:
    def test_round_trip(self):
        obj = {"v": 1, "id": "r1", "op": "ping"}
        assert decode_line(encode_line(obj)) == obj
        assert check_envelope(obj) == ("r1", "ping")

    def test_rejects_bad_json(self):
        with pytest.raises(ProtocolError) as exc:
            decode_line(b"{nope")
        assert exc.value.kind == "bad_request"

    def test_rejects_wrong_version(self):
        with pytest.raises(ProtocolError):
            check_envelope({"v": 99, "op": "ping"})

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError):
            check_envelope({"v": 1, "op": "explode"})

    def test_v2_envelopes_accepted_alongside_v1(self):
        assert check_envelope({"v": 2, "id": "r", "op": "ping"}) \
            == ("r", "ping")


class TestV2Extras:
    def test_meta_defaults_off_for_v1_envelopes(self):
        assert envelope_meta({"v": 1, "id": "r", "op": "ping"}) \
            == (None, None)

    def test_meta_extracts_client_and_deadline(self):
        client, deadline_s = envelope_meta(
            {"v": 2, "op": "allocate", "client": "tenant-a",
             "deadline_s": 3})
        assert client == "tenant-a"
        assert deadline_s == 3.0 and isinstance(deadline_s, float)

    @pytest.mark.parametrize("extras", [
        {"client": 7},
        {"deadline_s": "soon"},
        {"deadline_s": True},
    ])
    def test_meta_rejects_malformed_values(self, extras):
        with pytest.raises(ProtocolError) as exc:
            envelope_meta({"v": 2, "op": "ping", **extras})
        assert exc.value.kind == "bad_request"

    def test_error_response_carries_rounded_retry_after(self):
        body = error_response("r", "overload", "busy",
                              retry_after=0.123456)
        assert body["error"]["retry_after"] == 0.1235
        plain = error_response("r", "failed", "no")
        assert "retry_after" not in plain["error"]

    def test_retryable_kinds_are_the_transient_ones(self):
        assert RETRYABLE_KINDS == {"overload", "draining",
                                   "unavailable"}

    def test_expired_failures_get_their_own_kind(self):
        from repro.engine import ExperimentFailure

        request = request_from_json({"ir_text": LOOP_TEXT,
                                     "int_regs": 4})
        failure = ExperimentFailure(
            key="k", request=request,
            error_class="DeadlineExpired", message="too late",
            attempts=0, worker_fate="expired")
        assert failure_to_json(failure)["kind"] == "expired"
        poisoned = ExperimentFailure(
            key="k", request=request, error_class="RuntimeError",
            message="boom", attempts=2, worker_fate="crashed")
        assert failure_to_json(poisoned)["kind"] == "failed"


class TestRequestFromJson:
    def test_inline_ir(self):
        req = request_from_json({"ir_text": LOOP_TEXT, "int_regs": 4,
                                 "args": [3]})
        assert req.machine.int_regs == 4
        assert req.machine.float_regs == 4
        assert req.mode is RenumberMode.REMAT
        assert req.args == (3,)

    def test_kernel_supplies_ir_and_default_args(self):
        from repro.benchsuite import KERNELS_BY_NAME

        req = request_from_json({"kernel": "zeroin", "int_regs": 8,
                                 "mode": "chaitin"})
        kernel = KERNELS_BY_NAME["zeroin"]
        assert req.ir_text == function_to_text(kernel.compile())
        assert req.args == tuple(kernel.args)
        assert req.mode is RenumberMode.CHAITIN

    def test_key_matches_local_construction(self):
        """The wire form keys identically to a locally-built request —
        the foundation of server-side dedup and cache sharing."""
        from repro.engine import ExperimentRequest

        spec = {"ir_text": LOOP_TEXT, "int_regs": 4, "args": [1]}
        local = ExperimentRequest(ir_text=LOOP_TEXT,
                                  machine=machine_with(4, 4), args=(1,))
        assert request_key(request_from_json(spec)) == request_key(local)

    @pytest.mark.parametrize("spec,fragment", [
        ({}, "ir_text/kernel"),
        ({"ir_text": "x", "kernel": "zeroin"}, "ir_text/kernel"),
        ({"kernel": "no-such-kernel"}, "unknown kernel"),
        ({"ir_text": LOOP_TEXT, "mode": "psychic"}, "unknown mode"),
        ({"ir_text": LOOP_TEXT, "int_regs": 0}, "positive"),
        ({"ir_text": LOOP_TEXT, "int_regs": "four"}, "positive"),
        ({"ir_text": LOOP_TEXT, "run": "yes"}, "boolean"),
        ({"ir_text": LOOP_TEXT, "args": "3"}, "array"),
        ({"ir_text": LOOP_TEXT, "repeats": 5}, "unknown request field"),
        ({"ir_text": LOOP_TEXT, "allocator": "linear-scan"},
         "unknown allocator"),
    ])
    def test_rejections(self, spec, fragment):
        with pytest.raises(ProtocolError) as exc:
            request_from_json(spec)
        assert exc.value.kind == "bad_request"
        assert fragment in exc.value.message

    def test_allocator_field(self):
        req = request_from_json({"ir_text": LOOP_TEXT, "int_regs": 4,
                                 "allocator": "ssa"})
        assert req.allocator == "ssa"
        # omitted -> the default strategy, keyed identically to a
        # locally-built request that never mentions the axis
        default = request_from_json({"ir_text": LOOP_TEXT, "int_regs": 4})
        assert default.allocator == "iterated"
        assert request_key(default) != request_key(req)


class TestSummaryJson:
    def test_deterministic_and_canonical(self):
        engine = ExperimentEngine(jobs=1, use_cache=False)
        spec = {"ir_text": LOOP_TEXT, "int_regs": 4, "args": [2]}
        req = request_from_json(spec)
        first = dumps(summary_to_json(engine.run(req)))
        again = dumps(summary_to_json(
            ExperimentEngine(jobs=1, use_cache=False).run(req)))
        assert first == again
        # canonical form: sorted keys, no whitespace
        assert first == json.dumps(json.loads(first), sort_keys=True,
                                   separators=(",", ":"))

    def test_carries_the_engine_answer(self):
        engine = ExperimentEngine(jobs=1, use_cache=False)
        req = request_from_json({"ir_text": LOOP_TEXT, "int_regs": 4,
                                 "args": [2]})
        summary = engine.run(req)
        body = summary_to_json(summary)
        assert body["key"] == request_key(req)
        assert body["mode"] == "remat"
        assert body["counts"] is not None
        assert body["steps"] == summary.steps
        assert "timing" not in body
