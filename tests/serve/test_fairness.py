"""Fair admission: a greedy tenant cannot starve a polite one.

The router meters each declared ``client`` identity through its own
token bucket, so a client flooding ten connections gets throttled
(typed ``overload`` with a ``retry_after`` hint) while a well-behaved
client's latency stays put.
"""

import threading

from repro.engine import ExperimentEngine
from repro.ir import function_to_text
from repro.serve import (LoadReport, RouterConfig, RouterThread,
                         ServeClient, ServerThread, run_load)

from ..helpers import single_loop

LOOP_TEXT = function_to_text(single_loop())

POLITE_SPEC = {"ir_text": LOOP_TEXT, "int_regs": 4, "args": [0]}
GREEDY_SPEC = {"ir_text": LOOP_TEXT, "int_regs": 4, "args": [1]}

POLITE_REQUESTS = 40
GREEDY_REQUESTS = POLITE_REQUESTS * 10


def polite_load(port: int) -> LoadReport:
    return run_load("127.0.0.1", port, [POLITE_SPEC], clients=1,
                    total_requests=POLITE_REQUESTS,
                    client_ids=["polite"], think_time=0.005)


def test_polite_client_p99_survives_a_greedy_neighbour():
    engine = ExperimentEngine(jobs=1, use_cache=False)
    config = RouterConfig(ping_interval=0.02, bucket_rate=100.0,
                          bucket_burst=20.0)
    with ServerThread(engine) as srv:
        backends = {"b0": ("127.0.0.1", srv.port)}
        with RouterThread(backends, config) as rt:
            # warm both keys so backend latency is memo-flat and the
            # measurement isolates the router's admission behaviour
            with ServeClient("127.0.0.1", rt.port) as warm:
                warm.allocate(**POLITE_SPEC)
                warm.allocate(**GREEDY_SPEC)

            solo = polite_load(rt.port)
            assert solo.ok == POLITE_REQUESTS and solo.failed == 0

            # now the same polite run, next to a tenant driving 10x
            # the traffic over ten connections under one identity
            reports = {}

            def greedy() -> None:
                reports["greedy"] = run_load(
                    "127.0.0.1", rt.port, [GREEDY_SPEC], clients=10,
                    total_requests=GREEDY_REQUESTS,
                    client_ids=["greedy"])

            flood = threading.Thread(target=greedy)
            flood.start()
            try:
                contended = polite_load(rt.port)
            finally:
                flood.join(timeout=120)

            with ServeClient("127.0.0.1", rt.port) as probe:
                counters = probe.metrics()["counters"]

    greedy_report = reports["greedy"]
    assert contended.ok == POLITE_REQUESTS and contended.failed == 0
    assert greedy_report.ok == GREEDY_REQUESTS

    # the router throttled the flood, not the polite tenant
    assert counters["router.throttled"] > 0
    assert greedy_report.rejected > 0
    assert contended.rejected == 0

    # the acceptance bar: polite p99 within 2x of its solo p99.  The
    # absolute floor absorbs scheduler jitter: warm round-trips sit in
    # the ~10ms range on a busy machine, where the 2x ratio alone is
    # noise — an unthrottled 10x flood degrades far past the floor.
    solo_p99 = solo.client_latency_ms("polite", 99)
    contended_p99 = contended.client_latency_ms("polite", 99)
    assert contended_p99 <= max(2.0 * solo_p99, 25.0), \
        f"polite p99 {contended_p99:.3f}ms vs solo {solo_p99:.3f}ms"
