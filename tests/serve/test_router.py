"""The cluster router: ring, buckets, shedding, failover, aggregation."""

import asyncio
import socket
import threading
import time

import pytest

from repro.engine import ExperimentEngine
from repro.ir import function_to_text
from repro.serve import (HashRing, ResilientClient, RetriesExhausted,
                         RouterConfig, RouterThread, ServeClient,
                         ServeConfig, ServeError, ServerThread,
                         TokenBucket, dumps, request_from_json,
                         summary_to_json)
from repro.serve import protocol
from repro.serve.router import ClusterRouter

from ..helpers import single_loop

LOOP_TEXT = function_to_text(single_loop())


def spec(n: int = 0) -> dict:
    return {"ir_text": LOOP_TEXT, "int_regs": 4, "args": [n]}


def serial_engine() -> ExperimentEngine:
    return ExperimentEngine(jobs=1, use_cache=False)


def free_port() -> int:
    """A port that was just bound and released — connecting to it
    refuses (the stand-in for a crashed backend)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def fast_config(**overrides) -> RouterConfig:
    base = dict(ping_interval=0.02, ping_timeout=2.0,
                breaker_base=0.02, breaker_cap=0.2)
    base.update(overrides)
    return RouterConfig(**base)


class TestHashRing:
    def test_order_is_deterministic_and_covers_every_backend(self):
        ring = HashRing(["b0", "b1", "b2"])
        order = ring.order("some-key")
        assert sorted(order) == ["b0", "b1", "b2"]
        assert order == HashRing(["b2", "b0", "b1"]).order("some-key")
        assert ring.primary("some-key") == order[0]

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing(["b0", "b1", "b2"], virtual_nodes=64)
        counts = {"b0": 0, "b1": 0, "b2": 0}
        for i in range(600):
            counts[ring.primary(f"key-{i}")] += 1
        # virtual nodes keep every backend within a sane share
        assert min(counts.values()) >= 100

    def test_most_keys_keep_their_primary_when_a_backend_leaves(self):
        """The consistent-hashing property: removing one of three
        backends must not reshuffle keys between the survivors."""
        full = HashRing(["b0", "b1", "b2"], virtual_nodes=64)
        reduced = HashRing(["b0", "b1"], virtual_nodes=64)
        moved = 0
        for i in range(300):
            key = f"key-{i}"
            before = full.primary(key)
            if before != "b2" and reduced.primary(key) != before:
                moved += 1
        assert moved == 0

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])


class TestTokenBucket:
    def test_burst_admits_then_throttles_with_a_hint(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        assert bucket.admit(now=0.0) == 0.0
        assert bucket.admit(now=0.0) == 0.0
        wait = bucket.admit(now=0.0)
        assert wait == pytest.approx(0.1)   # one token at 10/s

    def test_tokens_refill_over_time_up_to_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        bucket.admit(now=0.0)
        bucket.admit(now=0.0)
        assert bucket.admit(now=0.05) > 0.0   # only half a token back
        assert bucket.admit(now=10.0) == 0.0  # refilled (capped at burst)
        assert bucket.tokens <= bucket.burst


class TestSheddingMath:
    def test_probability_ramps_between_watermarks(self):
        router = ClusterRouter({"b0": ("127.0.0.1", 1)},
                               RouterConfig(shed_low=10, shed_high=20))
        assert router._shed_probability(0) == 0.0
        assert router._shed_probability(9) == 0.0
        assert router._shed_probability(15) == pytest.approx(0.5)
        assert router._shed_probability(20) == 1.0
        assert router._shed_probability(1000) == 1.0


def route_line(n: int = 0, request_id: str = "t", **extra) -> bytes:
    envelope = {"v": 2, "id": request_id, "op": "allocate",
                "request": spec(n)}
    envelope.update(extra)
    return protocol.encode_line(envelope)


class TestForwarding:
    """Unit scenarios against :meth:`ClusterRouter._route` — backends
    are marked healthy by hand, so no probe timing is involved."""

    def run_route(self, router: ClusterRouter, line: bytes) -> dict:
        async def scenario():
            links = {}
            try:
                raw = await router._route(line, links, "test-peer")
            finally:
                for link in links.values():
                    link.close()
            return protocol.decode_line(raw)

        return asyncio.run(scenario())

    def test_failover_from_dead_primary_to_live_peer(self):
        with ServerThread(serial_engine()) as srv:
            dead = free_port()
            # make the dead backend the primary for this exact request
            route_key = protocol.dumps(spec(0))
            router = ClusterRouter({"b0": ("127.0.0.1", dead),
                                    "b1": ("127.0.0.1", dead)})
            primary = router.ring.order(route_key)[0]
            backends = {name: ("127.0.0.1",
                               dead if name == primary else srv.port)
                        for name in ("b0", "b1")}
            router = ClusterRouter(backends)
            for state in router.backends.values():
                state.healthy = True
            response = self.run_route(router, route_line(0))
        assert response["ok"] is True
        assert router.metrics.counters()["router.failovers"] == 1
        assert router.metrics.counters()["router.forwarded"] == 1

    def test_unavailable_when_no_backend_is_healthy(self):
        router = ClusterRouter({"b0": ("127.0.0.1", free_port())})
        response = self.run_route(router, route_line(0))
        assert response["ok"] is False
        error = response["error"]
        assert error["kind"] == "unavailable"
        assert error["retry_after"] > 0
        assert router.metrics.counters()["router.unavailable"] == 1

    def test_shed_above_the_watermark_is_typed_overload(self):
        router = ClusterRouter(
            {"b0": ("127.0.0.1", free_port())},
            RouterConfig(shed_low=1, shed_high=2))
        state = router.backends["b0"]
        state.healthy = True
        state.inflight = 10           # far past shed_high: p == 1.0
        response = self.run_route(router, route_line(0))
        error = response["error"]
        assert error["kind"] == "overload"
        assert "shed" in error["message"]
        assert error["retry_after"] > 0
        assert router.metrics.counters()["router.shed"] == 1

    def test_spent_deadline_answers_expired_without_forwarding(self):
        router = ClusterRouter({"b0": ("127.0.0.1", free_port())})
        router.backends["b0"].healthy = True
        response = self.run_route(router, route_line(0, deadline_s=0.0))
        assert response["error"]["kind"] == "expired"
        assert router.metrics.counters()["router.expired"] == 1
        assert "router.forwarded" not in router.metrics.counters()

    def test_per_client_token_bucket_throttles_the_flood(self):
        with ServerThread(serial_engine()) as srv:
            router = ClusterRouter(
                {"b0": ("127.0.0.1", srv.port)},
                RouterConfig(bucket_rate=0.001, bucket_burst=1.0))
            router.backends["b0"].healthy = True
            first = self.run_route(
                router, route_line(0, client="tenant-a"))
            second = self.run_route(
                router, route_line(0, client="tenant-a"))
        assert first["ok"] is True
        assert second["ok"] is False
        error = second["error"]
        assert error["kind"] == "overload"
        assert "tenant-a" in error["message"]
        assert error["retry_after"] > 0
        assert router.metrics.counters()["router.throttled"] == 1

    def test_v1_clients_are_metered_by_peer_address(self):
        with ServerThread(serial_engine()) as srv:
            router = ClusterRouter(
                {"b0": ("127.0.0.1", srv.port)},
                RouterConfig(bucket_rate=0.001, bucket_burst=1.0))
            router.backends["b0"].healthy = True
            line = protocol.encode_line({"v": 1, "id": "t",
                                         "op": "allocate",
                                         "request": spec(0)})
            assert self.run_route(router, line)["ok"] is True
            second = self.run_route(router, line)
        assert second["error"]["kind"] == "overload"
        assert "test-peer" in second["error"]["message"]


class TestEndToEnd:
    """Socket-level tests: two ServerThread backends behind a
    RouterThread, driven by the ordinary clients."""

    def test_byte_identity_and_dedup_survive_the_router(self):
        with ServerThread(serial_engine()) as a, \
                ServerThread(serial_engine()) as b:
            backends = {"b0": ("127.0.0.1", a.port),
                        "b1": ("127.0.0.1", b.port)}
            with RouterThread(backends, fast_config()) as rt:
                with ServeClient("127.0.0.1", rt.port) as client:
                    first = client.allocate(**spec(0))
                    again = client.allocate(**spec(0))
                    merged = client.metrics()
        local = serial_engine().run_many([request_from_json(spec(0))])[0]
        assert dumps(first) == dumps(summary_to_json(local))
        assert dumps(again) == dumps(first)
        counters = merged["counters"]
        # same spec → same backend → its memo answered the repeat
        assert counters["engine.executed"] == 1
        assert counters["engine.memo_hits"] == 1
        assert counters["router.forwarded"] == 2

    def test_ping_reports_cluster_health(self):
        with ServerThread(serial_engine()) as a, \
                ServerThread(serial_engine()) as b:
            backends = {"b0": ("127.0.0.1", a.port),
                        "b1": ("127.0.0.1", b.port)}
            with RouterThread(backends, fast_config()) as rt:
                with ServeClient("127.0.0.1", rt.port) as client:
                    pong = client.call("ping")
        assert pong == {"pong": True, "healthy": 2, "backends": 2}

    def test_metrics_aggregate_merges_histograms_and_router_state(self):
        with ServerThread(serial_engine()) as a, \
                ServerThread(serial_engine()) as b:
            backends = {"b0": ("127.0.0.1", a.port),
                        "b1": ("127.0.0.1", b.port)}
            with RouterThread(backends, fast_config()) as rt:
                with ServeClient("127.0.0.1", rt.port) as client:
                    for n in range(4):
                        client.allocate(**spec(n))
                    merged = client.metrics()
        latency = merged["histograms"]["serve.request_seconds"]
        assert latency["count"] == 4     # across both backends
        assert merged["counters"]["serve.requests"] >= 4
        router_view = merged["router"]
        assert router_view["healthy"] == 2
        assert set(router_view["backends"]) == {"b0", "b1"}
        for state in router_view["backends"].values():
            assert state["healthy"] is True
            assert state["probes_ok"] >= 1
        assert set(merged["backends"]) == {"b0", "b1"}
        per_backend_requests = sum(
            snap["counters"].get("serve.op.allocate", 0)
            for snap in merged["backends"].values() if snap)
        assert per_backend_requests == 4

    def test_debug_aggregate_tags_entries_with_their_backend(self):
        with ServerThread(serial_engine()) as a, \
                ServerThread(serial_engine()) as b:
            backends = {"b0": ("127.0.0.1", a.port),
                        "b1": ("127.0.0.1", b.port)}
            with RouterThread(backends, fast_config()) as rt:
                with ServeClient("127.0.0.1", rt.port) as client:
                    for n in range(4):
                        client.allocate(**spec(n))
                    dump = client.debug()
        assert dump["recorded"] == 4
        assert len(dump["slowest"]) == 4
        assert {entry["backend"] for entry in dump["slowest"]} \
            <= {"b0", "b1"}
        # merged view is sorted slowest-first across the cluster
        totals = [entry["access"]["total_s"]
                  for entry in dump["slowest"]]
        assert totals == sorted(totals, reverse=True)
        assert set(dump["backends"]) == {"b0", "b1"}

    def test_update_backend_repins_and_recovers(self):
        """The supervisor's restart notification path: repoint one
        backend at a new address and watch probes re-mark it healthy."""
        with ServerThread(serial_engine()) as a, \
                ServerThread(serial_engine()) as b, \
                ServerThread(serial_engine()) as c:
            backends = {"b0": ("127.0.0.1", a.port),
                        "b1": ("127.0.0.1", b.port)}
            with RouterThread(backends, fast_config()) as rt:
                assert rt.router is not None
                rt.router.update_backend_threadsafe(
                    "b1", "127.0.0.1", c.port)
                state = rt.router.backends["b1"]
                deadline = time.monotonic() + 10
                while state.port != c.port:   # scheduled on the loop
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                rt.wait_healthy()
                assert state.restarts == 1
                with ServeClient("127.0.0.1", rt.port) as client:
                    assert client.ping()
                    counters = client.metrics()["counters"]
        assert counters["router.backend_restarts"] == 1


class TestResilientClient:
    def test_non_retryable_errors_raise_immediately(self):
        with ServerThread(serial_engine()) as srv:
            with ResilientClient("127.0.0.1", srv.port) as client:
                with pytest.raises(ServeError) as exc:
                    client.allocate(kernel="no-such-kernel")
                assert client.retries == 0
        assert exc.value.kind == "bad_request"
        assert not exc.value.retryable

    def test_draining_retries_until_exhausted(self):
        with ServerThread(serial_engine()) as srv:
            assert srv.server is not None
            srv.server.draining = True
            with ResilientClient("127.0.0.1", srv.port, max_retries=2,
                                 backoff=0.001) as client:
                with pytest.raises(RetriesExhausted) as exc:
                    client.allocate(**spec(0))
                assert client.retries == 2
            srv.server.draining = False
        assert exc.value.kind == "draining"

    def test_transport_failures_reconnect_then_exhaust(self):
        client = ResilientClient("127.0.0.1", free_port(),
                                 max_retries=2, backoff=0.001)
        with pytest.raises(RetriesExhausted) as exc:
            client.ping()
        assert exc.value.kind == "unavailable"
        assert client.retries == 2

    def test_spent_deadline_expires_client_side(self):
        client = ResilientClient("127.0.0.1", free_port(), deadline=0.0)
        with pytest.raises(ServeError) as exc:
            client.ping()
        assert exc.value.kind == "expired"
        assert client.retries == 0    # never even dialled

    def test_threads_share_one_resilient_client(self):
        with ServerThread(serial_engine()) as srv:
            client = ResilientClient("127.0.0.1", srv.port)
            results = {}

            def one(n: int) -> None:
                results[n] = dumps(client.allocate(**spec(n % 2)))

            threads = [threading.Thread(target=one, args=(n,))
                       for n in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        expected = [dumps(summary_to_json(o)) for o in
                    serial_engine().run_many(
                        [request_from_json(spec(n % 2))
                         for n in range(6)])]
        assert [results[n] for n in range(6)] == expected
