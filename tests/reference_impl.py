"""The seed's set-based liveness and interference-graph implementations,
kept verbatim as a reference oracle.

The production code in :mod:`repro.analysis.liveness` and
:mod:`repro.regalloc.interference` runs on dense int bitsets; the
equivalence property tests (and ``benchmarks/bench_build_scaling.py``)
check it against — and time it against — these originals.

:func:`ref_simplify` and :func:`ref_select` likewise preserve the
pre-incremental color phases (linear candidate rescan, per-neighbor
forbidden sets) so the scaling bench can race the current allocator
end to end against the from-scratch configuration it replaced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ir import Function, Instruction, Reg
from repro.machine import MachineDescription
from repro.obs import NULL_TRACER
from repro.regalloc.interference import InterferenceGraph
from repro.regalloc.select import SelectResult
from repro.regalloc.simplify import SimplifyResult
from repro.regalloc.spillcost import SpillCosts


@dataclass
class RefBlockLiveness:
    """use/def summaries and live-in/out sets for one block."""

    use: set[Reg]
    defs: set[Reg]
    live_in: set[Reg]
    live_out: set[Reg]


@dataclass
class RefLivenessInfo:
    """Liveness facts for one function, keyed by block label."""

    blocks: dict[str, RefBlockLiveness]

    def live_in(self, label: str) -> set[Reg]:
        return self.blocks[label].live_in

    def live_out(self, label: str) -> set[Reg]:
        return self.blocks[label].live_out


def ref_block_use_def(
        instructions: list[Instruction]) -> tuple[set[Reg], set[Reg]]:
    use: set[Reg] = set()
    defs: set[Reg] = set()
    for inst in instructions:
        for src in inst.srcs:
            if src not in defs:
                use.add(src)
        defs.update(inst.dests)
    return use, defs


def ref_compute_liveness(fn: Function) -> RefLivenessInfo:
    """The seed's set-based worklist liveness, unchanged."""
    labels = fn.reverse_postorder()
    info: dict[str, RefBlockLiveness] = {}
    for label in labels:
        use, defs = ref_block_use_def(fn.block(label).instructions)
        info[label] = RefBlockLiveness(use=use, defs=defs, live_in=set(),
                                       live_out=set())

    preds = fn.predecessors_map()
    order = list(reversed(labels))
    worklist = list(order)
    in_list = set(worklist)
    while worklist:
        label = worklist.pop()
        in_list.discard(label)
        bl = info[label]
        live_out: set[Reg] = set()
        for succ in fn.block(label).successors():
            if succ in info:
                live_out |= info[succ].live_in
        live_in = bl.use | (live_out - bl.defs)
        bl.live_out = live_out
        if live_in != bl.live_in:
            bl.live_in = live_in
            for p in preds[label]:
                if p in info and p not in in_list:
                    worklist.append(p)
                    in_list.add(p)
    return RefLivenessInfo(blocks=info)


class RefInterferenceGraph:
    """The seed's dual-representation interference graph, unchanged:
    a set of canonicalized register pairs plus per-node adjacency sets."""

    def __init__(self, nodes: list[Reg] | None = None) -> None:
        self._adj: dict[Reg, set[Reg]] = {}
        self._matrix: set[tuple[Reg, Reg]] = set()
        for node in nodes or ():
            self.add_node(node)

    def add_node(self, reg: Reg) -> None:
        self._adj.setdefault(reg, set())

    @staticmethod
    def _key(a: Reg, b: Reg) -> tuple[Reg, Reg]:
        return (a, b) if a.sort_key() <= b.sort_key() else (b, a)

    def add_edge(self, a: Reg, b: Reg) -> None:
        if a == b or a.rclass is not b.rclass:
            return
        key = self._key(a, b)
        if key in self._matrix:
            return
        self._matrix.add(key)
        self._adj.setdefault(a, set()).add(b)
        self._adj.setdefault(b, set()).add(a)

    def nodes(self) -> list[Reg]:
        return list(self._adj)

    def __contains__(self, reg: Reg) -> bool:
        return reg in self._adj

    def interferes(self, a: Reg, b: Reg) -> bool:
        return self._key(a, b) in self._matrix

    def neighbors(self, reg: Reg) -> set[Reg]:
        return self._adj[reg]

    def degree(self, reg: Reg) -> int:
        return len(self._adj[reg])

    def n_edges(self) -> int:
        return len(self._matrix)

    def merge(self, keep: Reg, gone: Reg) -> None:
        if keep.rclass is not gone.rclass:
            raise ValueError(f"cannot merge {keep} with {gone}")
        for n in list(self._adj[gone]):
            self._matrix.discard(self._key(gone, n))
            self._adj[n].discard(gone)
            self.add_edge(keep, n)
        del self._adj[gone]
        self._matrix.discard(self._key(keep, gone))

    def remove_node(self, reg: Reg) -> None:
        for n in list(self._adj[reg]):
            self._matrix.discard(self._key(reg, n))
            self._adj[n].discard(reg)
        del self._adj[reg]


def ref_build_interference_graph(fn: Function) -> RefInterferenceGraph:
    """The seed's backward-scan build, unchanged (per-edge set inserts)."""
    liveness = ref_compute_liveness(fn)
    graph = RefInterferenceGraph()
    for _blk, inst in fn.instructions():
        for r in inst.regs():
            graph.add_node(r)

    for blk in fn.blocks:
        live: set[Reg] = set(liveness.live_out(blk.label))
        for inst in reversed(blk.instructions):
            src_exempt = inst.src if inst.is_copy else None
            for d in inst.dests:
                for l in live:
                    if l is not d and l != src_exempt:
                        graph.add_edge(d, l)
            live.difference_update(inst.dests)
            live.update(inst.srcs)
    return graph


# -- pre-incremental color phases, kept verbatim ----------------------------


def ref_simplify(graph: InterferenceGraph, machine: MachineDescription,
                 costs: SpillCosts, optimistic: bool = True,
                 tracer=NULL_TRACER) -> SimplifyResult:
    """The pre-heap simplify: linear rescan of the live nodes for every
    spill-candidate choice (``O(candidates * live nodes)``)."""
    degree: dict[Reg, int] = {n: graph.degree(n) for n in graph.nodes()}
    alive: dict[Reg, None] = dict.fromkeys(degree)
    stack: list[Reg] = []
    candidates: set[Reg] = set()
    pessimistic_spills: list[Reg] = []
    index = graph.index

    def k_of(reg: Reg) -> int:
        return machine.k(reg.rclass)

    worklist = [n for n in degree if degree[n] < k_of(n)]

    def remove(node: Reg, push: bool = True) -> None:
        del alive[node]
        if push:
            stack.append(node)
        for n in index.iter_regs(graph.neighbor_bits(node)):
            if n not in alive:
                continue
            degree[n] -= 1
            if degree[n] == k_of(n) - 1:
                worklist.append(n)

    while alive:
        while worklist:
            node = worklist.pop()
            if node in alive and degree[node] < k_of(node):
                remove(node)
        if not alive:
            break
        candidate = _ref_pick_spill_candidate(degree, alive, costs)
        if candidate is None:
            break
        candidates.add(candidate)
        if optimistic:
            remove(candidate)
        else:
            pessimistic_spills.append(candidate)
            remove(candidate, push=False)
    return SimplifyResult(stack=stack, candidates=candidates,
                          pessimistic_spills=pessimistic_spills)


def _ref_pick_spill_candidate(degree: dict[Reg, int],
                              alive: dict[Reg, None],
                              costs: SpillCosts) -> Reg | None:
    best: Reg | None = None
    best_ratio = math.inf
    fallback: Reg | None = None
    for node in alive:
        deg = degree[node]
        cost = costs.cost.get(node, math.inf)
        if math.isinf(cost):
            if fallback is None:
                fallback = node
            continue
        ratio = cost / max(deg, 1)
        if ratio < best_ratio or (ratio == best_ratio and best is not None
                                  and node.sort_key() < best.sort_key()):
            best, best_ratio = node, ratio
    return best if best is not None else fallback


def ref_select(graph: InterferenceGraph, order: SimplifyResult,
               machine: MachineDescription,
               partners: dict[Reg, set[Reg]] | None = None,
               lookahead: bool = True, tracer=NULL_TRACER) -> SelectResult:
    """The pre-bitset select: a forbidden *set* built per node from a
    neighbor walk, and lookahead recomputing every uncolored partner's
    forbidden set once per trial color."""
    partners = partners or {}
    result = SelectResult()
    coloring = result.coloring

    index = graph.index
    for node in reversed(order.stack):
        k = machine.k(node.rclass)
        forbidden = {coloring[n]
                     for n in index.iter_regs(graph.neighbor_bits(node))
                     if n in coloring}
        available = [c for c in range(k) if c not in forbidden]
        if not available:
            result.spilled.append(node)
            continue
        color, _because = _ref_choose_color(node, available, graph,
                                            coloring, partners, lookahead)
        coloring[node] = color
    return result


def _ref_choose_color(node: Reg, available: list[int],
                      graph: InterferenceGraph, coloring: dict[Reg, int],
                      partners: dict[Reg, set[Reg]],
                      lookahead: bool) -> tuple[int, str]:
    mates = sorted(partners.get(node, ()), key=lambda r: r.sort_key())
    for mate in mates:
        c = coloring.get(mate)
        if c is not None and c in available:
            return c, "biased-partner"
    if lookahead and mates:
        uncolored = [m for m in mates if m not in coloring and m in graph]
        best_color = None
        best_score = -1
        index = graph.index
        for c in available:
            score = 0
            for mate in uncolored:
                mate_forbidden = {
                    coloring[n]
                    for n in index.iter_regs(graph.neighbor_bits(mate))
                    if n in coloring}
                if c not in mate_forbidden:
                    score += 1
            if score > best_score:
                best_color, best_score = c, score
        if best_color is not None:
            return best_color, "lookahead"
    return available[0], "first-free"


def ref_block_maxlive(fn: Function) -> dict[str, dict]:
    """Brute-force per-block MAXLIVE oracle for
    :func:`repro.regalloc.compute_block_maxlive`.

    Enumerates every pressure point of every block explicitly with the
    set-based reference liveness — entry, live-before each instruction
    (rebuilt by an independent backward walk from ``live_out``), and
    each definition point (destinations counted against the live-after
    set) — and takes the per-class maximum of plain ``len``-style set
    counting.  No bitsets, no shared scan helpers.
    """
    from repro.ir import RegClass

    live = ref_compute_liveness(fn)
    result: dict[str, dict] = {}
    for blk in fn.blocks:
        insts = blk.instructions
        after: set[Reg] = set(live.blocks[blk.label].live_out)
        befores: list[set[Reg]] = []
        afters: list[set[Reg]] = []
        for inst in reversed(insts):
            afters.append(set(after))
            after = (after - set(inst.dests)) | set(inst.srcs)
            befores.append(set(after))
        befores.reverse()
        afters.reverse()

        points: list[set[Reg]] = [set(live.blocks[blk.label].live_in)]
        for inst, before, inst_after in zip(insts, befores, afters):
            points.append(before)
            if inst.dests:
                points.append(inst_after | set(inst.dests))

        result[blk.label] = {
            cls: max((sum(1 for r in point if r.rclass is cls)
                      for point in points), default=0)
            for cls in (RegClass.INT, RegClass.FLOAT)}
    return result
