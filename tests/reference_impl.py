"""The seed's set-based liveness and interference-graph implementations,
kept verbatim as a reference oracle.

The production code in :mod:`repro.analysis.liveness` and
:mod:`repro.regalloc.interference` runs on dense int bitsets; the
equivalence property tests (and ``benchmarks/bench_build_scaling.py``)
check it against — and time it against — these originals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir import Function, Instruction, Reg


@dataclass
class RefBlockLiveness:
    """use/def summaries and live-in/out sets for one block."""

    use: set[Reg]
    defs: set[Reg]
    live_in: set[Reg]
    live_out: set[Reg]


@dataclass
class RefLivenessInfo:
    """Liveness facts for one function, keyed by block label."""

    blocks: dict[str, RefBlockLiveness]

    def live_in(self, label: str) -> set[Reg]:
        return self.blocks[label].live_in

    def live_out(self, label: str) -> set[Reg]:
        return self.blocks[label].live_out


def ref_block_use_def(
        instructions: list[Instruction]) -> tuple[set[Reg], set[Reg]]:
    use: set[Reg] = set()
    defs: set[Reg] = set()
    for inst in instructions:
        for src in inst.srcs:
            if src not in defs:
                use.add(src)
        defs.update(inst.dests)
    return use, defs


def ref_compute_liveness(fn: Function) -> RefLivenessInfo:
    """The seed's set-based worklist liveness, unchanged."""
    labels = fn.reverse_postorder()
    info: dict[str, RefBlockLiveness] = {}
    for label in labels:
        use, defs = ref_block_use_def(fn.block(label).instructions)
        info[label] = RefBlockLiveness(use=use, defs=defs, live_in=set(),
                                       live_out=set())

    preds = fn.predecessors_map()
    order = list(reversed(labels))
    worklist = list(order)
    in_list = set(worklist)
    while worklist:
        label = worklist.pop()
        in_list.discard(label)
        bl = info[label]
        live_out: set[Reg] = set()
        for succ in fn.block(label).successors():
            if succ in info:
                live_out |= info[succ].live_in
        live_in = bl.use | (live_out - bl.defs)
        bl.live_out = live_out
        if live_in != bl.live_in:
            bl.live_in = live_in
            for p in preds[label]:
                if p in info and p not in in_list:
                    worklist.append(p)
                    in_list.add(p)
    return RefLivenessInfo(blocks=info)


class RefInterferenceGraph:
    """The seed's dual-representation interference graph, unchanged:
    a set of canonicalized register pairs plus per-node adjacency sets."""

    def __init__(self, nodes: list[Reg] | None = None) -> None:
        self._adj: dict[Reg, set[Reg]] = {}
        self._matrix: set[tuple[Reg, Reg]] = set()
        for node in nodes or ():
            self.add_node(node)

    def add_node(self, reg: Reg) -> None:
        self._adj.setdefault(reg, set())

    @staticmethod
    def _key(a: Reg, b: Reg) -> tuple[Reg, Reg]:
        return (a, b) if a.sort_key() <= b.sort_key() else (b, a)

    def add_edge(self, a: Reg, b: Reg) -> None:
        if a == b or a.rclass is not b.rclass:
            return
        key = self._key(a, b)
        if key in self._matrix:
            return
        self._matrix.add(key)
        self._adj.setdefault(a, set()).add(b)
        self._adj.setdefault(b, set()).add(a)

    def nodes(self) -> list[Reg]:
        return list(self._adj)

    def __contains__(self, reg: Reg) -> bool:
        return reg in self._adj

    def interferes(self, a: Reg, b: Reg) -> bool:
        return self._key(a, b) in self._matrix

    def neighbors(self, reg: Reg) -> set[Reg]:
        return self._adj[reg]

    def degree(self, reg: Reg) -> int:
        return len(self._adj[reg])

    def n_edges(self) -> int:
        return len(self._matrix)

    def merge(self, keep: Reg, gone: Reg) -> None:
        if keep.rclass is not gone.rclass:
            raise ValueError(f"cannot merge {keep} with {gone}")
        for n in list(self._adj[gone]):
            self._matrix.discard(self._key(gone, n))
            self._adj[n].discard(gone)
            self.add_edge(keep, n)
        del self._adj[gone]
        self._matrix.discard(self._key(keep, gone))

    def remove_node(self, reg: Reg) -> None:
        for n in list(self._adj[reg]):
            self._matrix.discard(self._key(reg, n))
            self._adj[n].discard(reg)
        del self._adj[reg]


def ref_build_interference_graph(fn: Function) -> RefInterferenceGraph:
    """The seed's backward-scan build, unchanged (per-edge set inserts)."""
    liveness = ref_compute_liveness(fn)
    graph = RefInterferenceGraph()
    for _blk, inst in fn.instructions():
        for r in inst.regs():
            graph.add_node(r)

    for blk in fn.blocks:
        live: set[Reg] = set(liveness.live_out(blk.label))
        for inst in reversed(blk.instructions):
            src_exempt = inst.src if inst.is_copy else None
            for d in inst.dests:
                for l in live:
                    if l is not d and l != src_exempt:
                        graph.add_edge(d, l)
            live.difference_update(inst.dests)
            live.update(inst.srcs)
    return graph
