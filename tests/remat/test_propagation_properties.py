"""Property tests for tag propagation on random programs.

The fixed examples in test_propagate.py pin specific answers; these
properties must hold on arbitrary generated control flow:

* propagation is monotone: every final tag is <= its initial tag in the
  lattice order ⊤ > inst > ⊥,
* φ results carry the meet of their operands' final tags,
* copy destinations carry exactly their source's final tag,
* never-killed definitions keep their inst tag (nothing can lower a
  non-copy, non-φ value),
* propagation is deterministic and idempotent.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.benchsuite import GeneratorConfig, random_program
from repro.ir import Opcode
from repro.remat import (BOTTOM, TOP, initial_tags, is_remat, meet_all,
                         propagate_tags)
from repro.ssa import SSAGraph, construct_ssa

SHAPES = GeneratorConfig(n_vars=4, max_depth=3, max_stmts=4)

common = settings(max_examples=25, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


def graph_and_tags(seed):
    fn = random_program(seed, SHAPES)
    fn.split_critical_edges()
    info = construct_ssa(fn)
    graph = SSAGraph.build(fn, info)
    tags = propagate_tags(graph)
    return fn, graph, tags


def height(tag):
    if tag is TOP:
        return 2
    if tag is BOTTOM:
        return 0
    return 1


@common
@given(seed=st.integers(0, 10_000))
def test_monotone_lowering(seed):
    fn, graph, tags = graph_and_tags(seed)
    initial = initial_tags(graph)
    for value, tag in tags.items():
        assert height(tag) <= height(initial[value])


@common
@given(seed=st.integers(0, 10_000))
def test_phi_results_are_meets(seed):
    fn, graph, tags = graph_and_tags(seed)
    for value, inst in graph.def_inst.items():
        if inst.opcode is Opcode.PHI:
            expected = meet_all(tags[s] for s in inst.srcs)
            assert tags[value] == expected


@common
@given(seed=st.integers(0, 10_000))
def test_copy_dests_match_sources(seed):
    fn, graph, tags = graph_and_tags(seed)
    for value, inst in graph.def_inst.items():
        if inst.is_copy:
            assert tags[value] == tags[inst.src]


@common
@given(seed=st.integers(0, 10_000))
def test_never_killed_defs_keep_inst_tags(seed):
    fn, graph, tags = graph_and_tags(seed)
    from repro.remat import InstTag
    for value, inst in graph.def_inst.items():
        if inst.is_never_killed:
            assert tags[value] == InstTag.of(inst)


@common
@given(seed=st.integers(0, 10_000))
def test_idempotent_and_deterministic(seed):
    fn, graph, _ = graph_and_tags(seed)
    a = propagate_tags(graph)
    b = propagate_tags(graph)
    assert a == b
