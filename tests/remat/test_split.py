"""Tests for live-range formation and tag-driven splitting (Figure 3)."""

import pytest

from repro.interp import run_function
from repro.ir import Opcode, verify_function
from repro.remat import (RenumberMode, apply_plan, is_remat, plan_unions,
                         propagate_tags)
from repro.ssa import SSAGraph, construct_ssa

from ..helpers import (ALL_SHAPES, figure1_fragment, if_in_loop,
                       nested_loops, single_loop)


def renumber(fn, mode):
    """Run the full renumber pipeline on *fn* in place."""
    fn.split_critical_edges()
    info = construct_ssa(fn)
    if mode is RenumberMode.REMAT:
        graph = SSAGraph.build(fn, info)
        tags = propagate_tags(graph)
    else:
        tags = None
    plan = plan_unions(fn, info, tags, mode)
    return apply_plan(fn, info, plan, tags)


def count_splits(fn):
    return sum(1 for _b, i in fn.instructions() if i.is_split)


class TestChaitinMode:
    def test_no_splits_no_phis(self):
        fn = single_loop()
        result = renumber(fn, RenumberMode.CHAITIN)
        assert count_splits(fn) == 0
        assert result.n_splits_inserted == 0
        verify_function(fn)  # no φs left

    def test_webs_reconstruct_original_register_count(self):
        """Chaitin renumber merges each φ web back into one live range."""
        fn = single_loop()
        result = renumber(fn, RenumberMode.CHAITIN)
        # induction variable is a single live range again
        assert len(result.live_ranges) <= 7

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_semantics_preserved(self, shape):
        original = shape()
        expected = run_function(original.clone(), args=[6]).output
        fn = original
        renumber(fn, RenumberMode.CHAITIN)
        assert run_function(fn, args=[6]).output == expected


class TestRematMode:
    def test_figure3_minimal_single_split(self):
        """The paper's Figure 3 'Minimal' column: exactly one split isolates
        the never-killed p0 from the ⊥ web p12."""
        fn = figure1_fragment()
        result = renumber(fn, RenumberMode.REMAT)
        assert result.n_splits_inserted == 1
        assert count_splits(fn) == 1

    def test_figure3_split_connects_inst_to_bottom(self):
        fn = figure1_fragment()
        result = renumber(fn, RenumberMode.REMAT)
        split = next(i for _b, i in fn.instructions() if i.is_split)
        assert is_remat(result.lr_tags[split.src])
        assert not is_remat(result.lr_tags[split.dest])

    def test_lr_tags_are_uniform(self):
        """Every live range's members share one tag (union never mixes)."""
        for shape in ALL_SHAPES:
            fn = shape()
            fn.split_critical_edges()
            info = construct_ssa(fn)
            graph = SSAGraph.build(fn, info)
            tags = propagate_tags(graph)
            plan = plan_unions(fn, info, tags, RenumberMode.REMAT)
            for values in plan.ds.classes().values():
                tag_set = {tags[v] for v in values}
                assert len(tag_set) == 1, (fn.name, values)

    def test_remat_copies_of_constants_deleted(self):
        """Step 5: a copy between identically-tagged inst values dies."""
        from repro.ir import IRBuilder
        b = IRBuilder("f")
        x = b.ldi(7)
        y = b.copy(x)
        b.out(y)
        b.ret()
        fn = b.finish()
        result = renumber(fn, RenumberMode.REMAT)
        assert result.n_copies_removed >= 1
        assert not any(i.is_copy for _b, i in fn.instructions())

    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_semantics_preserved(self, shape):
        original = shape()
        expected = run_function(original.clone(), args=[6]).output
        fn = original
        renumber(fn, RenumberMode.REMAT)
        verify_function(fn)
        assert run_function(fn, args=[6]).output == expected

    def test_more_live_ranges_than_chaitin(self):
        """Splitting isolates values: at least as many LRs as Chaitin."""
        fn_old = figure1_fragment()
        fn_new = figure1_fragment()
        old = renumber(fn_old, RenumberMode.CHAITIN)
        new = renumber(fn_new, RenumberMode.REMAT)
        assert len(new.live_ranges) >= len(old.live_ranges)


class TestSplitAllMode:
    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_semantics_preserved(self, shape):
        original = shape()
        expected = run_function(original.clone(), args=[6]).output
        fn = original
        renumber(fn, RenumberMode.SPLIT_ALL)
        verify_function(fn)
        assert run_function(fn, args=[6]).output == expected

    def test_splits_at_every_phi_operand(self):
        fn = single_loop()
        info_fn = single_loop()
        info_fn.split_critical_edges()
        info = construct_ssa(info_fn)
        n_operands = sum(len(phi.srcs)
                         for blk in info_fn.blocks for phi in blk.phis())
        result = renumber(fn, RenumberMode.SPLIT_ALL)
        assert result.n_splits_inserted == n_operands

    def test_at_least_as_many_live_ranges_as_remat(self):
        fn_a = if_in_loop()
        fn_b = if_in_loop()
        split_all = renumber(fn_a, RenumberMode.SPLIT_ALL)
        remat = renumber(fn_b, RenumberMode.REMAT)
        assert len(split_all.live_ranges) >= len(remat.live_ranges)


class TestRenumberBookkeeping:
    def test_value_to_lr_covers_all_values(self):
        fn = nested_loops()
        fn.split_critical_edges()
        info = construct_ssa(fn)
        graph = SSAGraph.build(fn, info)
        tags = propagate_tags(graph)
        plan = plan_unions(fn, info, tags, RenumberMode.REMAT)
        result = apply_plan(fn, info, plan, tags)
        assert set(result.value_to_lr) == set(info.def_site)
        for lr, members in result.members.items():
            for v in members:
                assert result.value_to_lr[v] == lr

    def test_code_mentions_only_live_ranges(self):
        fn = nested_loops()
        result = renumber(fn, RenumberMode.REMAT)
        lrs = set(result.live_ranges)
        for _blk, inst in fn.instructions():
            for r in inst.regs():
                assert r in lrs, f"{inst} mentions non-LR register {r}"
