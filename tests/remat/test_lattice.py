"""Property tests for the rematerialization lattice (Section 3.2)."""

from hypothesis import given, strategies as st

from repro.ir import Opcode
from repro.remat import BOTTOM, InstTag, TOP, is_remat, meet, meet_all

inst_tags = st.sampled_from([
    InstTag(Opcode.LDI, (0,)),
    InstTag(Opcode.LDI, (1,)),
    InstTag(Opcode.LDI, (42,)),
    InstTag(Opcode.LSD, (0,)),
    InstTag(Opcode.LSD, (64,)),
    InstTag(Opcode.LFP, (8,)),
    InstTag(Opcode.LDF, (2.5,)),
    InstTag(Opcode.CLDW, (16,)),
    InstTag(Opcode.PARAM, (0,)),
])

tags = st.one_of(st.just(TOP), st.just(BOTTOM), inst_tags)


class TestMeetTable:
    """The four rows of the paper's meet definition."""

    def test_top_is_identity(self):
        t = InstTag(Opcode.LDI, (7,))
        assert meet(TOP, t) == t
        assert meet(t, TOP) == t
        assert meet(TOP, BOTTOM) is BOTTOM
        assert meet(TOP, TOP) is TOP

    def test_bottom_is_absorbing(self):
        t = InstTag(Opcode.LDI, (7,))
        assert meet(BOTTOM, t) is BOTTOM
        assert meet(t, BOTTOM) is BOTTOM
        assert meet(BOTTOM, BOTTOM) is BOTTOM

    def test_equal_insts_meet_to_themselves(self):
        a = InstTag(Opcode.LDI, (7,))
        b = InstTag(Opcode.LDI, (7,))
        assert meet(a, b) == a

    def test_different_insts_meet_to_bottom(self):
        a = InstTag(Opcode.LDI, (7,))
        b = InstTag(Opcode.LDI, (8,))
        c = InstTag(Opcode.LSD, (7,))
        assert meet(a, b) is BOTTOM
        assert meet(a, c) is BOTTOM

    def test_operand_by_operand_comparison(self):
        """Same opcode, same immediates -> equal; anything else differs."""
        assert InstTag(Opcode.LDI, (7,)) == InstTag(Opcode.LDI, (7,))
        assert InstTag(Opcode.LDI, (7,)) != InstTag(Opcode.LDI, (-7,))


class TestMeetProperties:
    @given(tags, tags)
    def test_commutative(self, a, b):
        assert meet(a, b) == meet(b, a)

    @given(tags, tags, tags)
    def test_associative(self, a, b, c):
        assert meet(meet(a, b), c) == meet(a, meet(b, c))

    @given(tags)
    def test_idempotent(self, a):
        assert meet(a, a) == a

    @given(tags, tags)
    def test_meet_is_a_lower_bound(self, a, b):
        """meet(a,b) is <= both inputs in lattice order T > inst > B."""
        def height(t):
            if t is TOP:
                return 2
            if t is BOTTOM:
                return 0
            return 1
        m = meet(a, b)
        assert height(m) <= height(a)
        assert height(m) <= height(b)

    @given(st.lists(tags, max_size=6))
    def test_meet_all_matches_fold(self, ts):
        result = meet_all(ts)
        folded = TOP
        for t in ts:
            folded = meet(folded, t)
        assert result == folded


class TestIsRemat:
    def test_only_inst_tags_are_remat(self):
        assert is_remat(InstTag(Opcode.LDI, (1,)))
        assert not is_remat(TOP)
        assert not is_remat(BOTTOM)

    def test_make_instruction_roundtrip(self):
        from repro.ir import Instruction, Reg
        tag = InstTag(Opcode.LSD, (64,))
        inst = tag.make_instruction(Reg.vint(9))
        assert inst.opcode is Opcode.LSD
        assert inst.imms == (64,)
        assert inst.dest == Reg.vint(9)
        assert InstTag.of(inst) == tag
