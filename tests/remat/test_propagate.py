"""Tests for tag initialization and sparse propagation."""

from repro.ir import IRBuilder, Instruction, Opcode, Reg
from repro.remat import (BOTTOM, InstTag, TOP, initial_tag, is_remat,
                         propagate_tags)
from repro.ssa import SSAGraph, construct_ssa

from ..helpers import figure1_fragment, single_loop


def tags_for(fn):
    info = construct_ssa(fn)
    graph = SSAGraph.build(fn, info)
    return propagate_tags(graph), info, graph


class TestInitialTags:
    def test_never_killed_gets_inst_tag(self):
        inst = Instruction(Opcode.LDI, dests=(Reg.vint(0),), imms=(5,))
        assert initial_tag(inst) == InstTag(Opcode.LDI, (5,))

    def test_copy_and_phi_get_top(self):
        copy = Instruction(Opcode.COPY, dests=(Reg.vint(1),),
                           srcs=(Reg.vint(0),))
        phi = Instruction(Opcode.PHI, dests=(Reg.vint(2),),
                          srcs=(Reg.vint(0), Reg.vint(1)))
        assert initial_tag(copy) is TOP
        assert initial_tag(phi) is TOP

    def test_ordinary_instruction_gets_bottom(self):
        add = Instruction(Opcode.ADD, dests=(Reg.vint(2),),
                          srcs=(Reg.vint(0), Reg.vint(1)))
        assert initial_tag(add) is BOTTOM

    def test_split_gets_top(self):
        split = Instruction(Opcode.SPLIT, dests=(Reg.vint(1),),
                            srcs=(Reg.vint(0),))
        assert initial_tag(split) is TOP


class TestPropagation:
    def test_no_tops_remain(self):
        for shape in (single_loop, figure1_fragment):
            tags, _info, _graph = tags_for(shape())
            assert TOP not in tags.values()

    def test_copy_of_constant_is_remat(self):
        b = IRBuilder("f")
        x = b.ldi(7)
        y = b.copy(x)
        b.out(y)
        b.ret()
        tags, _info, _graph = tags_for(b.finish())
        remat = [t for t in tags.values() if is_remat(t)]
        assert len(remat) == 2
        assert all(t == InstTag(Opcode.LDI, (7,)) for t in remat)

    def test_phi_of_identical_constants_is_remat(self):
        """Both arms load the same address constant: the merge stays inst."""
        b = IRBuilder("f")
        c = b.ldi(1)
        b.cbr(c, "a", "z")
        b.label("a")
        p_a = b.lsd(64)
        r = b.function.new_reg(p_a.rclass)
        b.copy_to(r, p_a)
        b.jmp("join")
        b.label("z")
        p_z = b.lsd(64)
        b.copy_to(r, p_z)
        b.jmp("join")
        b.label("join")
        b.out(b.ldw(r))
        b.ret()
        tags, info, _g = tags_for(b.finish())
        join_phi = b.function.block("join").phis()[0]
        assert tags[join_phi.dest] == InstTag(Opcode.LSD, (64,))

    def test_phi_of_different_constants_is_bottom(self):
        b = IRBuilder("f")
        c = b.ldi(1)
        b.cbr(c, "a", "z")
        b.label("a")
        r = b.function.new_reg(c.rclass)
        b.copy_to(r, b.lsd(64))
        b.jmp("join")
        b.label("z")
        b.copy_to(r, b.lsd(128))      # a *different* constant
        b.jmp("join")
        b.label("join")
        b.out(b.ldw(r))
        b.ret()
        tags, info, _g = tags_for(b.finish())
        join_phi = b.function.block("join").phis()[0]
        assert tags[join_phi.dest] is BOTTOM

    def test_figure1_tags(self):
        """The paper's running example: p0 (the address) is never-killed;
        p's φ at the second loop header and the p+1 value are ⊥."""
        fn = figure1_fragment()
        tags, info, graph = tags_for(fn)
        lsd_values = [v for v, inst in graph.def_inst.items()
                      if inst.opcode is Opcode.LSD and inst.imms == (64,)]
        # the lsd feeding p and any copies of it carry the inst tag
        assert any(tags[v] == InstTag(Opcode.LSD, (64,))
                   for v in lsd_values)
        phi_p = fn.block("head2").phis()[0]
        assert tags[phi_p.dest] is BOTTOM
        # the addi p+1 value is bottom too
        addi_values = [v for v, inst in graph.def_inst.items()
                       if inst.opcode is Opcode.ADDI and inst.imms == (1,)
                       and v.rclass.name == "INT"]
        assert any(tags[v] is BOTTOM for v in addi_values)

    def test_loop_carried_constant_through_phi_cycle(self):
        """x = 5 outside; inside an if, x = 5 again: the φ web stays inst
        even though it passes through a loop-header φ."""
        b = IRBuilder("f", n_params=1)
        n = b.param(0)
        x = b.function.new_reg(n.rclass)
        i = b.function.new_reg(n.rclass)
        b.copy_to(x, b.ldi(5))
        b.copy_to(i, b.ldi(0))
        b.jmp("head")
        b.label("head")
        c = b.cmp_lt(i, n)
        b.cbr(c, "body", "exit")
        b.label("body")
        b.copy_to(i, b.add(i, x))     # use x (keeps its φ live at head)
        b.copy_to(x, b.ldi(5))        # same constant again
        b.jmp("head")
        b.label("exit")
        b.out(i)
        b.ret()
        fn = b.finish()
        tags, info, _g = tags_for(fn)
        head_phis = fn.block("head").phis()
        # one φ for i (bottom) and one for x (inst 5)
        tag_set = {repr(tags[p.dest]) for p in head_phis}
        assert "inst[ldi 5]" in tag_set
        assert "⊥" in tag_set
