"""Coverage tests for every IRBuilder helper."""

import pytest

from repro.interp import run_function
from repro.ir import IRBuilder, Opcode, RegClass, verify_function


class TestEveryEmitter:
    def test_int_helpers_emit_validated_instructions(self):
        b = IRBuilder("f", n_params=1)
        n = b.param(0)
        regs = [
            b.ldi(1), b.lfp(8), b.lsd(16), b.cldw(0),
        ]
        x, y = regs[0], b.ldi(2)
        results = [
            b.add(x, y), b.sub(x, y), b.mul(x, y), b.div(x, y), b.neg(x),
            b.addi(x, 1), b.subi(x, 1), b.muli(x, 2),
            b.cmp_lt(x, y), b.cmp_le(x, y), b.cmp_gt(x, y),
            b.cmp_ge(x, y), b.cmp_eq(x, y), b.cmp_ne(x, y),
        ]
        for r in results:
            assert r.rclass is RegClass.INT
        b.out(results[0])
        b.ret()
        verify_function(b.finish())

    def test_float_helpers(self):
        b = IRBuilder("f", n_params=1)
        f = b.ldf(1.5)
        g = b.cldf(8)
        h = b.fparam(0)
        results = [
            b.fadd(f, g), b.fsub(f, g), b.fmul(f, g), b.fdiv(f, g),
            b.fabs(f), b.fneg(f), b.i2f(b.ldi(1)),
        ]
        for r in results:
            assert r.rclass is RegClass.FLOAT
        icmp = [b.fcmp_lt(f, g), b.fcmp_le(f, g), b.fcmp_gt(f, g),
                b.fcmp_ge(f, g), b.fcmp_eq(f, g), b.fcmp_ne(f, g),
                b.f2i(h)]
        for r in icmp:
            assert r.rclass is RegClass.INT
        b.out(results[0])
        b.ret()
        verify_function(b.finish())

    def test_memory_helpers(self):
        b = IRBuilder("f")
        base = b.lsd(0)
        v = b.ldi(5)
        fv = b.ldf(1.5)
        b.stw(v, base)
        b.stwo(v, base, 8)
        b.fst(fv, b.lsd(16))
        b.fsto(fv, base, 24)
        b.out(b.ldw(base))
        b.out(b.ldwo(base, 8))
        b.out(b.fld(b.lsd(16)))
        b.out(b.fldo(base, 24))
        b.ret()
        fn = b.finish()
        verify_function(fn)
        assert run_function(fn).output == [5, 5, 1.5, 1.5]

    def test_copy_helpers_dispatch_by_class(self):
        b = IRBuilder("f")
        x = b.ldi(1)
        f = b.ldf(1.0)
        cx = b.copy(x)
        cf = b.copy(f)
        assert cx.rclass is RegClass.INT and cf.rclass is RegClass.FLOAT
        b.copy_to(x, cx)
        b.copy_to(f, cf)
        b.out(x)
        b.ret()
        fn = b.finish()
        opcodes = [i.opcode for i in fn.entry.instructions]
        assert Opcode.COPY in opcodes and Opcode.FCOPY in opcodes

    def test_out_dispatches_by_class(self):
        b = IRBuilder("f")
        b.out(b.ldi(1))
        b.out(b.ldf(2.0))
        b.ret()
        fn = b.finish()
        opcodes = [i.opcode for i in fn.entry.instructions]
        assert Opcode.OUT in opcodes and Opcode.FOUT in opcodes

    def test_emit_into_terminated_block_rejected(self):
        b = IRBuilder("f")
        b.ret()
        with pytest.raises(ValueError):
            b.ldi(1)

    def test_finish_rejects_unterminated(self):
        b = IRBuilder("f")
        b.ldi(1)
        with pytest.raises(ValueError):
            b.finish()

    def test_label_resumes_existing_block(self):
        b = IRBuilder("f")
        b.jmp("later")
        b.label("later")
        blk = b.label("later")
        assert blk.label == "later"
        b.ret()
        assert len(b.function.blocks) == 2
