"""Tests for registers and instructions."""

import pytest

from repro.ir import Instruction, Opcode, Reg, RegClass


class TestReg:
    def test_virtual_str(self):
        assert str(Reg.vint(3)) == "r3"
        assert str(Reg.vfloat(7)) == "f7"

    def test_physical_str(self):
        assert str(Reg.pint(3)) == "R3"
        assert str(Reg.pfloat(0)) == "F0"

    def test_equality_and_hash(self):
        assert Reg.vint(1) == Reg.vint(1)
        assert Reg.vint(1) != Reg.vfloat(1)
        assert Reg.vint(1) != Reg.pint(1)
        assert len({Reg.vint(1), Reg.vint(1), Reg.vint(2)}) == 2

    def test_ordering_is_total(self):
        regs = [Reg.vint(5), Reg.vfloat(2), Reg.pint(1), Reg.vint(0)]
        assert sorted(regs) == sorted(regs[::-1])


class TestInstruction:
    def test_str_add(self):
        inst = Instruction(Opcode.ADD, dests=(Reg.vint(2),),
                           srcs=(Reg.vint(0), Reg.vint(1)))
        assert str(inst) == "add r2 r0 r1"

    def test_str_ldi(self):
        inst = Instruction(Opcode.LDI, dests=(Reg.vint(4),), imms=(42,))
        assert str(inst) == "ldi r4 42"

    def test_str_cbr(self):
        inst = Instruction(Opcode.CBR, srcs=(Reg.vint(1),),
                           labels=("a", "b"))
        assert str(inst) == "cbr r1 a b"

    def test_validate_accepts_wellformed(self):
        Instruction(Opcode.FADD, dests=(Reg.vfloat(0),),
                    srcs=(Reg.vfloat(1), Reg.vfloat(2))).validate()

    def test_validate_rejects_wrong_class(self):
        inst = Instruction(Opcode.ADD, dests=(Reg.vfloat(0),),
                           srcs=(Reg.vint(1), Reg.vint(2)))
        with pytest.raises(ValueError):
            inst.validate()

    def test_validate_rejects_wrong_arity(self):
        inst = Instruction(Opcode.ADD, dests=(Reg.vint(0),),
                           srcs=(Reg.vint(1),))
        with pytest.raises(ValueError):
            inst.validate()

    def test_validate_rejects_wrong_label_count(self):
        inst = Instruction(Opcode.JMP, labels=("a", "b"))
        with pytest.raises(ValueError):
            inst.validate()

    def test_validate_rejects_float_imm_for_int_slot(self):
        inst = Instruction(Opcode.LDI, dests=(Reg.vint(0),), imms=(1.5,))
        with pytest.raises(ValueError):
            inst.validate()

    def test_phi_validation(self):
        phi = Instruction(Opcode.PHI, dests=(Reg.vint(0),),
                          srcs=(Reg.vint(1), Reg.vint(2), Reg.vint(3)))
        phi.validate()
        bad = Instruction(Opcode.PHI, dests=(Reg.vint(0),),
                          srcs=(Reg.vfloat(1),))
        with pytest.raises(ValueError):
            bad.validate()

    def test_rewrite_regs(self):
        inst = Instruction(Opcode.ADD, dests=(Reg.vint(2),),
                           srcs=(Reg.vint(0), Reg.vint(1)))
        inst.rewrite_regs({Reg.vint(0): Reg.pint(5), Reg.vint(2): Reg.pint(6)})
        assert inst.srcs == (Reg.pint(5), Reg.vint(1))
        assert inst.dests == (Reg.pint(6),)

    def test_copy_is_independent(self):
        inst = Instruction(Opcode.ADD, dests=(Reg.vint(2),),
                           srcs=(Reg.vint(0), Reg.vint(1)))
        clone = inst.copy()
        clone.rewrite_regs({Reg.vint(0): Reg.vint(9)})
        assert inst.srcs[0] == Reg.vint(0)

    def test_remat_key_equality(self):
        a = Instruction(Opcode.LDI, dests=(Reg.vint(0),), imms=(7,))
        b = Instruction(Opcode.LDI, dests=(Reg.vint(9),), imms=(7,))
        c = Instruction(Opcode.LDI, dests=(Reg.vint(0),), imms=(8,))
        d = Instruction(Opcode.LSD, dests=(Reg.vint(0),), imms=(7,))
        assert a.remat_key() == b.remat_key()
        assert a.remat_key() != c.remat_key()
        assert a.remat_key() != d.remat_key()

    def test_remat_key_rejects_ordinary_ops(self):
        inst = Instruction(Opcode.ADD, dests=(Reg.vint(2),),
                           srcs=(Reg.vint(0), Reg.vint(1)))
        with pytest.raises(ValueError):
            inst.remat_key()

    def test_single_dest_src_accessors(self):
        inst = Instruction(Opcode.COPY, dests=(Reg.vint(1),),
                           srcs=(Reg.vint(0),))
        assert inst.dest == Reg.vint(1)
        assert inst.src == Reg.vint(0)
        assert inst.is_copy and not inst.is_split

    def test_split_flags(self):
        inst = Instruction(Opcode.SPLIT, dests=(Reg.vint(1),),
                           srcs=(Reg.vint(0),))
        assert inst.is_copy and inst.is_split
