"""Tests for opcode metadata."""

from repro.ir import (CountClass, MNEMONIC_TO_OPCODE, NEVER_KILLED, Opcode,
                      RegClass, count_class_of, cycle_cost_of)


class TestOpcodeTable:
    def test_mnemonics_are_unique(self):
        mnemonics = [op.mnemonic for op in Opcode]
        assert len(mnemonics) == len(set(mnemonics))

    def test_mnemonic_lookup_roundtrip(self):
        for op in Opcode:
            assert MNEMONIC_TO_OPCODE[op.mnemonic] is op

    def test_never_killed_set_matches_paper(self):
        """The paper's four never-killed categories are all represented."""
        assert Opcode.LDI in NEVER_KILLED            # immediate int loads
        assert Opcode.LDF in NEVER_KILLED            # immediate fp loads
        assert Opcode.LFP in NEVER_KILLED            # frame-pointer offsets
        assert Opcode.LSD in NEVER_KILLED            # static-area offsets
        assert Opcode.CLDW in NEVER_KILLED           # constant-location loads
        assert Opcode.CLDF in NEVER_KILLED
        assert Opcode.PARAM in NEVER_KILLED          # frame-home reloads
        assert Opcode.FPARAM in NEVER_KILLED

    def test_ordinary_ops_are_not_never_killed(self):
        for op in (Opcode.ADD, Opcode.LDW, Opcode.COPY, Opcode.FMUL,
                   Opcode.ADDI, Opcode.SPLD):
            assert op not in NEVER_KILLED

    def test_never_killed_opcodes_take_no_register_sources(self):
        """Tag equality relies on never-killed ops having only immediates."""
        for op in NEVER_KILLED:
            assert op.info.srcs == ()

    def test_terminators(self):
        assert Opcode.JMP.info.is_terminator
        assert Opcode.CBR.info.is_terminator
        assert Opcode.RET.info.is_terminator
        assert not Opcode.ADD.info.is_terminator

    def test_copy_flags(self):
        assert Opcode.COPY.info.is_copy and not Opcode.COPY.info.is_split
        assert Opcode.SPLIT.info.is_copy and Opcode.SPLIT.info.is_split
        assert Opcode.FSPLIT.info.is_split
        assert not Opcode.ADD.info.is_copy


class TestCostModel:
    def test_loads_and_stores_cost_two_cycles(self):
        for op in (Opcode.LDW, Opcode.LDWO, Opcode.FLD, Opcode.FLDO,
                   Opcode.STW, Opcode.STWO, Opcode.FST, Opcode.FSTO,
                   Opcode.SPLD, Opcode.SPST, Opcode.FSPLD, Opcode.FSPST,
                   Opcode.CLDW, Opcode.CLDF, Opcode.PARAM):
            assert cycle_cost_of(op) == 2, op

    def test_everything_else_costs_one_cycle(self):
        for op in (Opcode.ADD, Opcode.LDI, Opcode.LDF, Opcode.COPY,
                   Opcode.SPLIT, Opcode.ADDI, Opcode.JMP, Opcode.CBR,
                   Opcode.LFP, Opcode.LSD, Opcode.FMUL):
            assert cycle_cost_of(op) == 1, op

    def test_count_classes_match_table1_columns(self):
        assert count_class_of(Opcode.SPLD) is CountClass.LOAD
        assert count_class_of(Opcode.LDW) is CountClass.LOAD
        assert count_class_of(Opcode.SPST) is CountClass.STORE
        assert count_class_of(Opcode.COPY) is CountClass.COPY
        assert count_class_of(Opcode.SPLIT) is CountClass.COPY
        assert count_class_of(Opcode.LDI) is CountClass.LDI
        assert count_class_of(Opcode.LDF) is CountClass.LDI
        assert count_class_of(Opcode.ADDI) is CountClass.ADDI
        assert count_class_of(Opcode.LSD) is CountClass.ADDI
        assert count_class_of(Opcode.ADD) is CountClass.OTHER

    def test_signature_classes(self):
        assert Opcode.FCMP_LT.info.dests == (RegClass.INT,)
        assert Opcode.FCMP_LT.info.srcs == (RegClass.FLOAT, RegClass.FLOAT)
        assert Opcode.I2F.info.dests == (RegClass.FLOAT,)
        assert Opcode.CBR.info.n_labels == 2
        assert Opcode.JMP.info.n_labels == 1
