"""Tests for basic blocks, functions and CFG helpers."""

import pytest

from repro.ir import (Function, Instruction, IRBuilder, Opcode, Reg, RegClass,
                      verify_function)


def diamond() -> Function:
    """entry -> (left | right) -> join, with a critical-edge-free shape."""
    b = IRBuilder("diamond")
    cond = b.ldi(1)
    b.cbr(cond, "left", "right")
    b.label("left")
    b.jmp("join")
    b.label("right")
    b.jmp("join")
    b.label("join")
    b.ret()
    return b.finish()


class TestBasicBlock:
    def test_terminator_accessors(self):
        fn = diamond()
        assert fn.entry.terminator.opcode is Opcode.CBR
        assert fn.entry.successors() == ("left", "right")

    def test_body_excludes_terminator(self):
        fn = diamond()
        assert all(not i.is_terminator for i in fn.entry.body())
        assert len(fn.entry.body()) == len(fn.entry) - 1

    def test_insert_before_terminator(self):
        fn = diamond()
        blk = fn.block("left")
        inst = Instruction(Opcode.NOP)
        blk.insert_before_terminator(inst)
        assert blk.instructions[-2] is inst
        assert blk.is_terminated

    def test_unterminated_block_raises(self):
        fn = Function("f")
        blk = fn.add_block("only")
        with pytest.raises(ValueError):
            _ = blk.terminator


class TestFunction:
    def test_entry_is_first_block(self):
        fn = diamond()
        assert fn.entry.label == "entry"

    def test_duplicate_label_rejected(self):
        fn = Function("f")
        fn.add_block("x")
        with pytest.raises(ValueError):
            fn.add_block("x")

    def test_new_reg_monotone_and_classed(self):
        fn = Function("f")
        a = fn.new_reg(RegClass.INT)
        c = fn.new_reg(RegClass.FLOAT)
        assert a.index != c.index
        assert a.rclass is RegClass.INT and c.rclass is RegClass.FLOAT

    def test_reserve_regs(self):
        fn = Function("f")
        fn.reserve_regs(100)
        assert fn.new_reg(RegClass.INT).index >= 100

    def test_predecessors_map(self):
        fn = diamond()
        preds = fn.predecessors_map()
        assert preds["join"] == ["left", "right"]
        assert preds["entry"] == []
        assert preds["left"] == ["entry"]

    def test_reverse_postorder_starts_at_entry(self):
        fn = diamond()
        rpo = fn.reverse_postorder()
        assert rpo[0] == "entry"
        assert set(rpo) == {"entry", "left", "right", "join"}
        # every block appears after all of its non-backedge predecessors
        pos = {label: i for i, label in enumerate(rpo)}
        assert pos["join"] > pos["left"] and pos["join"] > pos["right"]

    def test_remove_unreachable_blocks(self):
        fn = diamond()
        orphan = fn.add_block("orphan")
        orphan.append(Instruction(Opcode.RET))
        removed = fn.remove_unreachable_blocks()
        assert removed == ["orphan"]
        assert not fn.has_block("orphan")

    def test_size_counts_instructions(self):
        fn = diamond()
        assert fn.size() == sum(len(b) for b in fn.blocks)


class TestCriticalEdges:
    def test_diamond_has_no_critical_edges(self):
        fn = diamond()
        assert fn.split_critical_edges() == 0

    def test_if_without_else_has_a_critical_edge(self):
        b = IRBuilder("halfif")
        cond = b.ldi(1)
        b.cbr(cond, "then", "join")      # entry -> join is critical
        b.label("then")
        b.jmp("join")
        b.label("join")
        b.ret()
        fn = b.finish()
        n = fn.split_critical_edges()
        assert n == 1
        preds = fn.predecessors_map()
        # after splitting, no edge is critical
        for blk in fn.blocks:
            succs = blk.successors()
            if len(succs) >= 2:
                for s in succs:
                    assert len(preds[s]) == 1
        verify_function(fn)

    def test_split_preserves_branch_order(self):
        b = IRBuilder("halfif")
        cond = b.ldi(0)
        b.cbr(cond, "then", "join")
        b.label("then")
        b.jmp("join")
        b.label("join")
        b.ret()
        fn = b.finish()
        fn.split_critical_edges()
        # the cbr's first label must still lead (possibly via a fresh
        # block) to 'then', the second to 'join'
        t0, t1 = fn.entry.terminator.labels
        assert t0 == "then"
        mid = fn.block(t1)
        assert mid.terminator.labels == ("join",)


class TestVerify:
    def test_verify_accepts_diamond(self):
        verify_function(diamond())

    def test_verify_rejects_unterminated(self):
        fn = Function("f")
        fn.add_block("entry")
        with pytest.raises(ValueError):
            verify_function(fn)

    def test_verify_rejects_unknown_target(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        blk.append(Instruction(Opcode.JMP, labels=("nowhere",)))
        with pytest.raises(ValueError):
            verify_function(fn)

    def test_verify_rejects_misplaced_terminator(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        blk.append(Instruction(Opcode.RET))
        blk.append(Instruction(Opcode.NOP))
        with pytest.raises(ValueError):
            verify_function(fn)

    def test_verify_rejects_stray_phi(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        blk.append(Instruction(Opcode.PHI, dests=(Reg.vint(0),),
                               srcs=(Reg.vint(1),)))
        blk.append(Instruction(Opcode.RET))
        with pytest.raises(ValueError):
            verify_function(fn)
        verify_function(fn, allow_phis=True)

    def test_verify_physical_mode(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        blk.append(Instruction(Opcode.LDI, dests=(Reg.pint(3),), imms=(1,)))
        blk.append(Instruction(Opcode.RET))
        verify_function(fn, require_physical=True, max_int_reg=16)
        with pytest.raises(ValueError):
            verify_function(fn, require_physical=True, max_int_reg=3)

    def test_verify_physical_rejects_virtual(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        blk.append(Instruction(Opcode.LDI, dests=(Reg.vint(3),), imms=(1,)))
        blk.append(Instruction(Opcode.RET))
        with pytest.raises(ValueError):
            verify_function(fn, require_physical=True)
