"""Round-trip tests for the textual ILOC parser and printer."""

import pytest

from repro.ir import (IRBuilder, Opcode, ParseError, Reg, function_to_text,
                      parse_function, verify_function)

SAMPLE = """
# sum the first n integers
proc sumto 1
entry:
    param r0 0
    ldi r1 0
    ldi r2 0
    jmp head
head:
    cmp_lt r3 r2 r0
    cbr r3 body exit
body:
    add r1 r1 r2
    addi r2 r2 1
    jmp head
exit:
    out r1
    ret
"""


class TestParse:
    def test_parses_sample(self):
        fn = parse_function(SAMPLE)
        assert fn.name == "sumto"
        assert fn.n_params == 1
        assert [b.label for b in fn.blocks] == ["entry", "head", "body",
                                                "exit"]
        verify_function(fn)

    def test_roundtrip_is_stable(self):
        fn = parse_function(SAMPLE)
        text = function_to_text(fn)
        fn2 = parse_function(text)
        assert function_to_text(fn2) == text

    def test_parser_reserves_vreg_space(self):
        fn = parse_function(SAMPLE)
        fresh = fn.new_reg(fn.entry.instructions[0].dest.rclass)
        assert fresh.index > 3

    def test_float_instructions(self):
        text = """proc f 0
entry:
    ldf f0 2.5
    fadd f1 f0 f0
    fout f1
    ret
"""
        fn = parse_function(text)
        (blk,) = fn.blocks
        assert blk.instructions[0].imms == (2.5,)
        assert function_to_text(fn) == text

    def test_physical_registers(self):
        text = """proc f 0
entry:
    ldi R3 1
    copy R4 R3
    ret
"""
        fn = parse_function(text)
        inst = fn.entry.instructions[0]
        assert inst.dest.physical and inst.dest.index == 3

    def test_comments_and_blanks_ignored(self):
        fn = parse_function("proc f 0\n\n# hi\nentry:\n    ret  # done\n")
        assert fn.entry.instructions[0].opcode is Opcode.RET

    def test_phi_parses(self):
        text = "proc f 0\nentry:\n    phi r2 r0 r1\n    ret\n"
        fn = parse_function(text)
        phi = fn.entry.instructions[0]
        assert phi.opcode is Opcode.PHI
        assert phi.dests == (Reg.vint(2),)
        assert phi.srcs == (Reg.vint(0), Reg.vint(1))


class TestParseErrors:
    def test_unknown_opcode(self):
        with pytest.raises(ParseError, match="unknown opcode"):
            parse_function("proc f 0\nentry:\n    frobnicate r1\n")

    def test_wrong_operand_count(self):
        with pytest.raises(ParseError, match="expected"):
            parse_function("proc f 0\nentry:\n    add r1 r2\n")

    def test_bad_register(self):
        with pytest.raises(ParseError, match="bad register"):
            parse_function("proc f 0\nentry:\n    copy r1 x2\n")

    def test_bad_immediate(self):
        with pytest.raises(ParseError, match="bad immediate"):
            parse_function("proc f 0\nentry:\n    ldi r1 abc\n")

    def test_missing_proc(self):
        with pytest.raises(ParseError, match="proc"):
            parse_function("entry:\n    ret\n")

    def test_instruction_outside_block(self):
        with pytest.raises(ParseError, match="outside"):
            parse_function("proc f 0\n    ret\n")

    def test_duplicate_proc(self):
        with pytest.raises(ParseError, match="multiple"):
            parse_function("proc f 0\nproc g 0\n")

    def test_wrong_class_register(self):
        with pytest.raises(ParseError):
            parse_function("proc f 0\nentry:\n    add f1 r2 r3\n")


class TestPrinterMatchesBuilder:
    def test_builder_output_parses(self):
        b = IRBuilder("k", n_params=2)
        x = b.param(0)
        y = b.param(1)
        s = b.add(x, y)
        f = b.i2f(s)
        g = b.fmul(f, b.ldf(0.5))
        b.out(g)
        b.ret()
        fn = b.finish()
        text = function_to_text(fn)
        fn2 = parse_function(text)
        assert function_to_text(fn2) == text
        assert fn2.size() == fn.size()
