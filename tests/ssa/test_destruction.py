"""Tests for standalone SSA destruction."""

import pytest

from repro.interp import run_function
from repro.ir import Opcode, verify_function
from repro.ssa import construct_ssa, destroy_ssa

from ..helpers import ALL_SHAPES, if_in_loop, single_loop


def roundtrip(shape, insert_copies):
    fn = shape()
    expected = run_function(fn.clone(), args=[6]).output
    fn.split_critical_edges()
    info = construct_ssa(fn)
    result = destroy_ssa(fn, info, insert_copies=insert_copies)
    verify_function(fn)   # no φs allowed anymore
    assert run_function(fn, args=[6]).output == expected
    return fn, result


class TestUnionDestruction:
    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_semantics_preserved(self, shape):
        fn, result = roundtrip(shape, insert_copies=False)
        assert result.n_splits_inserted == 0

    def test_no_copies_added(self):
        fn = single_loop()
        copies_before = sum(1 for _b, i in fn.instructions() if i.is_copy)
        fn.split_critical_edges()
        info = construct_ssa(fn)
        destroy_ssa(fn, info, insert_copies=False)
        copies_after = sum(1 for _b, i in fn.instructions() if i.is_copy)
        assert copies_after <= copies_before


class TestCopyDestruction:
    @pytest.mark.parametrize("shape", ALL_SHAPES)
    def test_semantics_preserved(self, shape):
        fn, result = roundtrip(shape, insert_copies=True)
        assert result.n_splits_inserted >= 0

    def test_copy_per_phi_operand(self):
        fn = if_in_loop()
        fn.split_critical_edges()
        info = construct_ssa(fn)
        n_operands = sum(len(phi.srcs)
                         for blk in fn.blocks for phi in blk.phis())
        result = destroy_ssa(fn, info, insert_copies=True)
        assert result.n_splits_inserted == n_operands

    def test_no_phis_survive(self):
        fn, _result = roundtrip(if_in_loop, insert_copies=True)
        assert all(i.opcode is not Opcode.PHI
                   for _b, i in fn.instructions())
