"""Tests for pruned SSA construction."""

import pytest

from repro.ir import Opcode, parse_function, verify_function
from repro.ssa import SSAError, SSAGraph, construct_ssa

from ..helpers import (diamond, figure1_fragment, if_in_loop, nested_loops,
                       single_loop, straight_line)


def count_phis(fn):
    return sum(1 for _b, i in fn.instructions() if i.opcode is Opcode.PHI)


class TestPhiPlacement:
    def test_straight_line_has_no_phis(self):
        fn = straight_line()
        construct_ssa(fn)
        assert count_phis(fn) == 0

    def test_loop_variable_gets_header_phi(self):
        fn = single_loop()
        info = construct_ssa(fn)
        head_phis = fn.block("head").phis()
        assert len(head_phis) == 1          # only the induction variable
        assert info.phi_preds["head"] == ["entry", "body"]

    def test_pruning_no_phi_for_dead_values(self):
        """cmp results die inside their block: no φ anywhere for them."""
        fn = if_in_loop()
        construct_ssa(fn)
        # head has φs only for i and acc (live around the loop)
        assert len(fn.block("head").phis()) == 2

    def test_if_in_loop_join_phi(self):
        fn = if_in_loop()
        construct_ssa(fn)
        # acc is redefined in both arms and live afterwards -> φ at latch
        assert len(fn.block("latch").phis()) == 1

    def test_figure1_phi_for_p_at_second_loop_only(self):
        """Figure 3: p needs a φ at the second loop's header, and none at
        the first loop's header (p is not modified in loop 1)."""
        fn = figure1_fragment()
        construct_ssa(fn)
        phis_head2 = fn.block("head2").phis()
        assert len(phis_head2) == 1
        # head1 has a φ for y (modified in loop 1) but none for p
        assert len(fn.block("head1").phis()) == 1

    def test_ssa_is_verifiable(self):
        for shape in (diamond, single_loop, nested_loops, if_in_loop):
            fn = shape()
            construct_ssa(fn)
            verify_function(fn, allow_phis=True)


class TestSingleAssignment:
    @pytest.mark.parametrize("shape", [diamond, single_loop, nested_loops,
                                       if_in_loop, figure1_fragment])
    def test_every_value_defined_once(self, shape):
        fn = shape()
        info = construct_ssa(fn)
        defs = {}
        for blk in fn.blocks:
            for inst in blk.instructions:
                for d in inst.dests:
                    assert d not in defs, f"{d} defined twice"
                    defs[d] = inst
        assert set(defs) == info.values()

    @pytest.mark.parametrize("shape", [single_loop, nested_loops,
                                       figure1_fragment])
    def test_def_sites_match_code(self, shape):
        fn = shape()
        info = construct_ssa(fn)
        for value, (label, inst) in info.def_site.items():
            assert inst in fn.block(label).instructions
            assert value in inst.dests

    def test_orig_reg_tracks_renaming(self):
        fn = single_loop()
        regs_before = fn.all_regs()
        info = construct_ssa(fn)
        for value, orig in info.orig_reg.items():
            assert orig in regs_before
            assert value.rclass is orig.rclass

    def test_phi_operands_match_pred_count(self):
        fn = nested_loops()
        info = construct_ssa(fn)
        for label, preds in info.phi_preds.items():
            for phi in fn.block(label).phis():
                assert len(phi.srcs) == len(preds)


class TestSSAGraph:
    def test_users_are_recorded(self):
        fn = single_loop()
        info = construct_ssa(fn)
        graph = SSAGraph.build(fn, info)
        for value, users in graph.users.items():
            for user in users:
                assert value in user.srcs

    def test_phi_values_flagged(self):
        fn = single_loop()
        info = construct_ssa(fn)
        graph = SSAGraph.build(fn, info)
        phi_values = [v for v in graph.values() if graph.is_phi(v)]
        assert len(phi_values) == 1


class TestErrors:
    def test_use_before_def_raises(self):
        text = "proc f 0\nentry:\n    out r5\n    ret\n"
        fn = parse_function(text)
        with pytest.raises(SSAError):
            construct_ssa(fn)
