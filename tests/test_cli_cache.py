"""The ``repro cache`` maintenance subcommand."""

import json

import pytest

from repro.cli import main
from repro.engine import (ResultCache, corrupt_cache_entry,
                          execute_request, request_key)
from repro.experiments import kernel_request
from repro.benchsuite import KERNELS_BY_NAME
from repro.machine import standard_machine
from repro.remat import RenumberMode


@pytest.fixture
def cache_dir(tmp_path):
    """A cache directory with two valid entries."""
    cache = ResultCache(tmp_path)
    kernel = KERNELS_BY_NAME["zeroin"]
    for mode in (RenumberMode.CHAITIN, RenumberMode.REMAT):
        request = kernel_request(kernel, standard_machine(), mode)
        assert cache.put(request_key(request), execute_request(request))
    return tmp_path


def first_key(cache_dir) -> str:
    return ResultCache(cache_dir).entries()[0].stem


class TestStats:
    def test_empty(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["entries"] == 0
        assert report["quarantined_entries"] == 0

    def test_populated(self, cache_dir, capsys):
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["entries"] == 2
        assert report["bytes"] > 0


class TestVerify:
    def test_clean_cache_exits_zero(self, cache_dir, capsys):
        assert main(["cache", "verify", "--cache-dir",
                     str(cache_dir)]) == 0
        assert "2 ok, 0 corrupt" in capsys.readouterr().out

    def test_corrupt_entry_exits_nonzero(self, cache_dir, capsys):
        corrupt_cache_entry(ResultCache(cache_dir), first_key(cache_dir),
                            "flip")
        assert main(["cache", "verify", "--cache-dir",
                     str(cache_dir)]) == 1
        assert "1 ok, 1 corrupt" in capsys.readouterr().out


class TestGc:
    def test_sweeps_quarantine(self, cache_dir, capsys):
        cache = ResultCache(cache_dir)
        corrupt_cache_entry(cache, first_key(cache_dir), "truncate")
        assert cache.get(first_key(cache_dir)) is None  # → quarantine/
        assert main(["cache", "gc", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 1 quarantined" in capsys.readouterr().out
        assert ResultCache(cache_dir).quarantined_entries() == []
