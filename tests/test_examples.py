"""Every example script must run to completion (keeps examples from
rotting as the library evolves)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "figure1_remat.py",
    "figure3_splits.py",
    "figure4_cgen.py",
    "compile_and_run.py",
    "optimizer_pipeline.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 50, f"{name} produced no meaningful output"


def test_run_experiments_help(capsys, monkeypatch):
    path = EXAMPLES_DIR / "run_experiments.py"
    monkeypatch.setattr(sys, "argv", [str(path), "--help"])
    with pytest.raises(SystemExit) as exc:
        runpy.run_path(str(path), run_name="__main__")
    assert exc.value.code == 0
    assert "Table 1" in capsys.readouterr().out


def test_all_examples_are_covered():
    """Every script in examples/ is exercised by some test here."""
    all_examples = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = set(FAST_EXAMPLES) | {"run_experiments.py",
                                    "splitting_schemes.py"}
    assert all_examples <= covered, all_examples - covered


def test_splitting_schemes_example_runs_small(capsys, monkeypatch):
    """splitting_schemes.py sweeps three machines; run it as-is (it is
    a few seconds) and check the verdict table appears."""
    path = EXAMPLES_DIR / "splitting_schemes.py"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert "around-all-loops" in out
