"""Tests for the disjoint-set structure."""

from hypothesis import given, strategies as st

from repro.unionfind import DisjointSets


class TestBasics:
    def test_singletons(self):
        ds = DisjointSets([1, 2, 3])
        assert ds.find(1) == 1
        assert not ds.same(1, 2)

    def test_union_merges(self):
        ds = DisjointSets()
        ds.union(1, 2)
        ds.union(2, 3)
        assert ds.same(1, 3)
        assert not ds.same(1, 4)

    def test_lazy_add(self):
        ds = DisjointSets()
        assert ds.find("x") == "x"
        assert "x" in ds and "y" not in ds

    def test_classes(self):
        ds = DisjointSets(range(5))
        ds.union(0, 1)
        ds.union(3, 4)
        classes = ds.classes()
        sizes = sorted(len(v) for v in classes.values())
        assert sizes == [1, 2, 2]
        for root, members in classes.items():
            assert root in members

    def test_union_returns_root(self):
        ds = DisjointSets()
        root = ds.union("a", "b")
        assert ds.find("a") == root == ds.find("b")

    def test_len_counts_items(self):
        ds = DisjointSets([1, 2])
        ds.union(1, 2)
        assert len(ds) == 2


@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)),
                max_size=60))
def test_matches_naive_partition(pairs):
    """Union-find agrees with a naive transitive-closure partition."""
    ds = DisjointSets(range(31))
    naive = {i: {i} for i in range(31)}
    for a, b in pairs:
        ds.union(a, b)
        merged = naive[a] | naive[b]
        for member in merged:
            naive[member] = merged
    for i in range(31):
        for j in range(31):
            assert ds.same(i, j) == (j in naive[i])
