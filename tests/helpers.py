"""Shared fixtures and naive reference algorithms for the test suite."""

from __future__ import annotations

from repro.ir import Function, IRBuilder


def straight_line() -> Function:
    b = IRBuilder("straight")
    x = b.ldi(1)
    y = b.addi(x, 2)
    b.out(y)
    b.ret()
    return b.finish()


def diamond() -> Function:
    b = IRBuilder("diamond")
    c = b.ldi(1)
    b.cbr(c, "left", "right")
    b.label("left")
    b.jmp("join")
    b.label("right")
    b.jmp("join")
    b.label("join")
    b.ret()
    return b.finish()


def single_loop() -> Function:
    """entry -> head -> body -> head; head -> exit."""
    b = IRBuilder("loop1", n_params=1)
    n = b.param(0)
    i = b.ldi(0)
    iv = b.function.new_reg(i.rclass)
    b.copy_to(iv, i)
    b.jmp("head")
    b.label("head")
    c = b.cmp_lt(iv, n)
    b.cbr(c, "body", "exit")
    b.label("body")
    nxt = b.addi(iv, 1)
    b.copy_to(iv, nxt)
    b.jmp("head")
    b.label("exit")
    b.out(iv)
    b.ret()
    return b.finish()


def nested_loops() -> Function:
    """Two nested counted loops; inner body at depth 2."""
    b = IRBuilder("loop2", n_params=1)
    n = b.param(0)
    i = b.function.new_reg(n.rclass)
    j = b.function.new_reg(n.rclass)
    acc = b.function.new_reg(n.rclass)
    b.copy_to(i, b.ldi(0))
    b.copy_to(acc, b.ldi(0))
    b.jmp("ohead")
    b.label("ohead")
    c = b.cmp_lt(i, n)
    b.cbr(c, "oibody", "oexit")
    b.label("oibody")
    b.copy_to(j, b.ldi(0))
    b.jmp("ihead")
    b.label("ihead")
    c2 = b.cmp_lt(j, n)
    b.cbr(c2, "ibody", "iexit")
    b.label("ibody")
    b.copy_to(acc, b.add(acc, j))
    b.copy_to(j, b.addi(j, 1))
    b.jmp("ihead")
    b.label("iexit")
    b.copy_to(i, b.addi(i, 1))
    b.jmp("ohead")
    b.label("oexit")
    b.out(acc)
    b.ret()
    return b.finish()


def if_in_loop() -> Function:
    """A loop whose body contains an if/else diamond."""
    b = IRBuilder("ifloop", n_params=1)
    n = b.param(0)
    i = b.function.new_reg(n.rclass)
    acc = b.function.new_reg(n.rclass)
    b.copy_to(i, b.ldi(0))
    b.copy_to(acc, b.ldi(0))
    b.jmp("head")
    b.label("head")
    c = b.cmp_lt(i, n)
    b.cbr(c, "body", "exit")
    b.label("body")
    two = b.ldi(2)
    q = b.div(i, two)
    qq = b.mul(q, two)
    even = b.cmp_eq(qq, i)
    b.cbr(even, "then", "els")
    b.label("then")
    b.copy_to(acc, b.add(acc, i))
    b.jmp("latch")
    b.label("els")
    b.copy_to(acc, b.sub(acc, i))
    b.jmp("latch")
    b.label("latch")
    b.copy_to(i, b.addi(i, 1))
    b.jmp("head")
    b.label("exit")
    b.out(acc)
    b.ret()
    return b.finish()


def figure1_fragment() -> Function:
    """The paper's Figure 1 example: p constant in loop 1, varying in loop 2.

    ::

        p <- Label            (lsd 64 here: an address constant)
        loop1: y <- y + [p]   until y >= limit1
        loop2: p <- p + 1 ... until p >= limit2
    """
    b = IRBuilder("figure1", n_params=1)
    n = b.param(0)
    p = b.function.new_reg(n.rclass)
    y = b.function.new_reg(n.rclass)
    b.copy_to(p, b.lsd(64))
    # y starts from memory (a ⊥ value) so that, as in the paper's figure,
    # only p contains a never-killed component
    b.copy_to(y, b.ldw(b.lsd(0)))
    b.jmp("head1")
    b.label("head1")
    c1 = b.cmp_lt(y, n)
    b.cbr(c1, "body1", "head2")
    b.label("body1")
    v = b.ldw(p)
    b.copy_to(y, b.add(y, v))
    b.copy_to(y, b.addi(y, 1))
    b.jmp("head1")
    b.label("head2")
    limit = b.add(b.lsd(64), n)
    c2 = b.cmp_lt(p, limit)
    b.cbr(c2, "body2", "exit")
    b.label("body2")
    b.copy_to(p, b.addi(p, 1))
    b.jmp("head2")
    b.label("exit")
    b.out(y)
    b.out(p)
    b.ret()
    return b.finish()


ALL_SHAPES = [straight_line, diamond, single_loop, nested_loops, if_in_loop,
              figure1_fragment]


# --- naive reference algorithms ------------------------------------------------


def naive_dominators(fn: Function) -> dict[str, set[str]]:
    """O(n^2) reference: dom(b) = blocks on *every* entry->b path.

    Computed by the classic iterative set formulation.
    """
    labels = fn.reverse_postorder()
    preds = fn.predecessors_map()
    entry = labels[0]
    dom = {label: set(labels) for label in labels}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for label in labels:
            if label == entry:
                continue
            ps = [p for p in preds[label] if p in dom]
            new = set(labels)
            for p in ps:
                new &= dom[p]
            new |= {label}
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


def naive_live_in(fn: Function) -> dict[str, set]:
    """Reference liveness: a register is live-in at B iff some path from B
    reaches a use before any def."""
    from repro.analysis import block_use_def

    labels = fn.reverse_postorder()
    summaries = {label: block_use_def(fn.block(label).instructions)
                 for label in labels}
    live_in = {label: set() for label in labels}
    changed = True
    while changed:
        changed = False
        for label in labels:
            use, defs = summaries[label]
            out = set()
            for s in fn.block(label).successors():
                out |= live_in.get(s, set())
            new = use | (out - defs)
            if new != live_in[label]:
                live_in[label] = new
                changed = True
    return live_in
