"""Tests for the ILOC → instrumented C translation (Figure 4)."""

import pytest

from repro.benchsuite import KERNELS_BY_NAME
from repro.cgen import CEmitterError, emit_function, emit_instruction
from repro.ir import Instruction, IRBuilder, Opcode, Reg, parse_function
from repro.machine import standard_machine
from repro.regalloc import allocate


def inst(text):
    fn = parse_function(f"proc f 0\nentry:\n    {text}\n    ret\n")
    return fn.entry.instructions[0]


class TestInstructionTranslation:
    def test_figure4_shapes(self):
        """The translations match Figure 4's one-statement-per-instruction
        pattern with a counter bump."""
        assert emit_instruction(inst("ldi r14 8")) == \
            "r14v = (long) (8); i++;"
        assert emit_instruction(inst("add r9 r15 r11")) == \
            "r9v = r15v + r11v; o++;"
        assert emit_instruction(inst("fcopy f15 f0")) == \
            "f15v = f0v; c++;"
        assert emit_instruction(inst("addi r14 r14 8")) == \
            "r14v = r14v + (8); a++;"
        assert emit_instruction(inst("fabs f14 f14")) == \
            "f14v = fabs(f14v); o++;"

    def test_load_counts_as_l(self):
        line = emit_instruction(inst("fld f14 r9"))
        assert line.endswith("l++;")
        assert "double" in line

    def test_store_counts_as_s(self):
        line = emit_instruction(inst("stw r1 r2"))
        assert line.endswith("s++;")

    def test_branch_translation(self):
        line = emit_instruction(inst("cbr r7 a b"), instrument=False)
        assert line == "if (r7v) goto a; else goto b;"

    def test_spill_slots_are_frame_relative(self):
        line = emit_instruction(inst("spld r1 0"), instrument=False)
        assert "4096 - 8" in line

    def test_physical_registers_distinct_namespace(self):
        line = emit_instruction(inst("copy R1 R2"), instrument=False)
        assert line == "r1p = r2p;"

    def test_instrumentation_optional(self):
        line = emit_instruction(inst("ldi r1 5"), instrument=False)
        assert "++" not in line

    def test_phi_rejected(self):
        phi = Instruction(Opcode.PHI, dests=(Reg.vint(0),),
                          srcs=(Reg.vint(1),))
        with pytest.raises(CEmitterError):
            emit_instruction(phi)


class TestFunctionTranslation:
    def test_emits_complete_routine(self):
        b = IRBuilder("sample", n_params=1)
        n = b.param(0)
        s = b.add(n, n)
        b.out(s)
        b.ret()
        text = emit_function(b.finish())
        assert "void sample(double *args)" in text
        assert "register long" in text
        assert "goto entry;" in text
        assert text.count("++;") == 4   # param, add, out, ret

    def test_register_declarations_cover_all_registers(self):
        kernel = KERNELS_BY_NAME["repvid"]
        fn = kernel.compile()
        text = emit_function(fn)
        for _blk, instruction in fn.instructions():
            for reg in instruction.regs():
                prefix = "r" if reg.rclass.name == "INT" else "f"
                assert f"{prefix}{reg.index}v" in text

    def test_allocated_kernel_emits(self):
        kernel = KERNELS_BY_NAME["repvid"]
        result = allocate(kernel.compile(), machine=standard_machine())
        text = emit_function(result.function)
        assert "register long" in text
        assert "r0p" in text

    def test_every_kernel_is_translatable(self):
        from repro.benchsuite import ALL_KERNELS
        for kernel in ALL_KERNELS:
            text = emit_function(kernel.compile())
            assert text.startswith("#include <stdio.h>")
            assert text.rstrip().endswith("}")

    def test_labels_become_c_labels(self):
        kernel = KERNELS_BY_NAME["repvid"]
        fn = kernel.compile()
        text = emit_function(fn)
        for blk in fn.blocks:
            assert f"{blk.label}:" in text
