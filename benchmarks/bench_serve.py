"""Evidence for the allocation server (allocation-as-a-service shape).

Boots one ``repro serve`` process with a warm worker pool and a fresh
cache, then measures a cold single-client pass over the corpus followed
by warm 100-request runs at 1, 8, and 64 concurrent clients.  Gates:

* every response is byte-identical to a local batch-engine run;
* warm-cache 64-client throughput beats the single-client cold
  baseline by at least 5x;
* worker spawns stay amortized — at most pool-size spawns in total,
  and none at all during the warm (cache-hot) runs.

A second arm measures the cost of full observability (request tracing
+ access log + flight recorder) against a server with tracing disabled:
best-of-3 warm throughput must stay within 5% of the uninstrumented
baseline, and the per-phase latency breakdown the instrumented server
reports lands in the results file.  The access log and flight-recorder
dump are written under ``benchmarks/results/`` so CI uploads them as
artifacts.

A third arm prices the cluster front-end: warm 64-client throughput
through ``--backends 1`` (router + one backend) must stay within 10%
of a direct single server, and ``--backends 2`` must beat the
one-backend cluster by at least 1.4x.  Load for this arm comes from
several ``repro.serve.loadgen`` subprocesses so the GIL-bound client
side cannot mask backend scaling; the ratio gates only run when the
machine has enough cores for the processes to overlap at all.

Writes latency percentiles and throughput per scenario to
``benchmarks/results/BENCH_serve.json``.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.engine import ExperimentEngine
from repro.serve import (PHASES, ServeClient, dumps, request_from_json,
                         run_load, summary_to_json)

POOL_SIZE = min(4, os.cpu_count() or 1)
EFFECTIVE_CPUS = (len(os.sched_getaffinity(0))
                  if hasattr(os, "sched_getaffinity")
                  else os.cpu_count() or 1)
KERNELS = ("zeroin", "fehl", "spline", "decomp")
WARM_REQUESTS = 100
CLIENT_COUNTS = (1, 8, 64)
OVERHEAD_ROUNDS = 3
OVERHEAD_REQUESTS = 150
OVERHEAD_BUDGET = 0.05
CLUSTER_OVERHEAD_BUDGET = 0.10
CLUSTER_SCALING_FLOOR = 1.4
CLUSTER_ROUNDS = 3
CLUSTER_CLIENTS = 64
CLUSTER_REQUESTS = 192
CLUSTER_LOAD_PROCS = 2


def corpus() -> list[dict]:
    return [{"kernel": name, "int_regs": 8, "float_regs": 8,
             "mode": mode}
            for name in KERNELS for mode in ("chaitin", "remat")]


def boot_server(cache_dir, *extra_args) -> dict:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", str(POOL_SIZE), "--cache-dir", str(cache_dir),
         "--queue-limit", "512", "--max-batch", "64", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    announce = proc.stdout.readline().strip()
    assert announce.startswith("# serving on "), announce
    port = int(announce.rsplit(":", 1)[1])
    return {"port": port, "proc": proc}


def stop_server(server: dict) -> None:
    proc = server["proc"]
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=60)
    proc.stdout.close()


def boot_cluster(cache_dir, backends: int) -> dict:
    """Boot ``repro serve --backends N`` and wait until the router's
    health probes report every backend up (the router announces its
    port before the first probe lands)."""
    handle = boot_server(cache_dir, "--backends", str(backends))
    deadline = time.monotonic() + 120.0
    while True:
        try:
            with ServeClient("127.0.0.1", handle["port"]) as probe:
                if probe.call("ping").get("healthy", 0) >= backends:
                    return handle
        except (ConnectionError, OSError):
            pass
        if time.monotonic() > deadline:
            stop_server(handle)
            raise AssertionError(
                f"cluster of {backends} never reported healthy")
        time.sleep(0.05)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    handle = boot_server(tmp_path_factory.mktemp("serve-cache"))
    yield handle
    stop_server(handle)


@pytest.fixture(scope="module")
def scenario_runs(server):
    port = server["port"]
    runs = {}

    with ServeClient("127.0.0.1", port) as probe:
        spawned_start = probe.metrics()["counters"].get("pool.spawned", 0)

    # cold: one client, every request a miss (pays spawn + execute)
    runs["cold_1"] = run_load("127.0.0.1", port, corpus(), clients=1,
                              total_requests=len(corpus()))

    with ServeClient("127.0.0.1", port) as probe:
        spawned_cold = probe.metrics()["counters"].get("pool.spawned", 0)

    # warm: the same corpus over a hot cache at increasing concurrency
    for clients in CLIENT_COUNTS:
        runs[f"warm_{clients}"] = run_load(
            "127.0.0.1", port, corpus(), clients=clients,
            total_requests=WARM_REQUESTS)

    with ServeClient("127.0.0.1", port) as probe:
        counters = probe.metrics()["counters"]

    runs["spawned_start"] = spawned_start
    runs["spawned_cold"] = spawned_cold
    runs["counters"] = counters
    return runs


def test_serve_throughput_and_amortization(scenario_runs, results_dir):
    cold = scenario_runs["cold_1"]
    warm64 = scenario_runs[f"warm_{CLIENT_COUNTS[-1]}"]
    counters = scenario_runs["counters"]

    for name in ("cold_1", *(f"warm_{c}" for c in CLIENT_COUNTS)):
        run = scenario_runs[name]
        assert run.failed == 0, (name, run)
        assert run.ok == run.requests, (name, run)

    # the perf gate: warm 64-client throughput >= 5x cold single-client
    assert warm64.throughput >= 5 * cold.throughput, \
        (warm64.throughput, cold.throughput)

    # spawn amortization: the cold pass spawns at most pool-size
    # workers, and the warm (cache-hot) runs spawn none at all
    spawned_total = counters.get("pool.spawned", 0)
    assert spawned_total - scenario_runs["spawned_start"] <= POOL_SIZE, \
        counters
    assert counters.get("pool.spawned", 0) == \
        scenario_runs["spawned_cold"], "warm runs spawned workers"

    # the warm runs were answered without re-execution
    assert counters["engine.executed"] == len(corpus())

    payload = {
        "pool_size": POOL_SIZE,
        "corpus": len(corpus()),
        "warm_requests": WARM_REQUESTS,
        "worker_spawns": spawned_total,
        "overload_rejections": counters.get(
            "serve.overload_rejections", 0),
        "deduplicated": counters.get("serve.deduplicated", 0),
        "speedup_warm64_vs_cold1": round(
            warm64.throughput / cold.throughput, 2)
        if cold.throughput else None,
        "runs": {name: scenario_runs[name].as_json()
                 for name in ("cold_1",
                              *(f"warm_{c}" for c in CLIENT_COUNTS))},
    }
    path = results_dir / "BENCH_serve.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {path}]")


def test_served_bytes_match_local_engine(server):
    """Acceptance gate: cold and warm server responses are both
    byte-identical to a local ``run_many`` over the same requests."""
    local = ExperimentEngine(jobs=1, use_cache=False)
    expected = [dumps(summary_to_json(o))
                for o in local.run_many([request_from_json(spec)
                                         for spec in corpus()])]
    with ServeClient("127.0.0.1", server["port"]) as client:
        served = [dumps(client.allocate(**spec)) for spec in corpus()]
        again = [dumps(client.allocate(**spec)) for spec in corpus()]
    assert served == expected
    assert again == expected


def test_warm_single_request_latency(server, benchmark):
    """The benchmarked operation: one warm round-trip (memo hit)."""
    with ServeClient("127.0.0.1", server["port"]) as client:
        payload = corpus()[0]
        client.allocate(**payload)  # ensure hot
        benchmark(lambda: client.allocate(**payload))


def _warm_throughput(port: int) -> float:
    run = run_load("127.0.0.1", port, corpus(), clients=8,
                   total_requests=OVERHEAD_REQUESTS)
    assert run.failed == 0, run
    return run.throughput


def test_observability_overhead_and_phase_breakdown(
        tmp_path_factory, results_dir):
    """Full instrumentation (tracing + access log + flight recorder)
    costs at most ``OVERHEAD_BUDGET`` of warm throughput, best-of-3
    against an uninstrumented server.  The instrumented server's phase
    breakdown and artifacts land under ``benchmarks/results/``."""
    access_path = results_dir / "serve_access.jsonl"
    flight_path = results_dir / "serve_flight.json"
    for stale in (access_path, flight_path):
        if stale.exists():
            stale.unlink()

    base = boot_server(tmp_path_factory.mktemp("obs-base"),
                       "--no-request-tracing")
    instr = boot_server(tmp_path_factory.mktemp("obs-instr"),
                        "--access-log", str(access_path),
                        "--flight-dump", str(flight_path))
    try:
        # prime both caches so the measured arms serve memo hits only
        for handle in (base, instr):
            run = run_load("127.0.0.1", handle["port"], corpus(),
                           clients=1, total_requests=len(corpus()))
            assert run.failed == 0, run

        # interleave the arms so machine drift hits both equally
        base_runs, instr_runs = [], []
        for _ in range(OVERHEAD_ROUNDS):
            base_runs.append(_warm_throughput(base["port"]))
            instr_runs.append(_warm_throughput(instr["port"]))

        with ServeClient("127.0.0.1", instr["port"]) as probe:
            snapshot = probe.metrics()
    finally:
        stop_server(base)
        stop_server(instr)

    overhead = 1.0 - max(instr_runs) / max(base_runs)
    assert overhead <= OVERHEAD_BUDGET, (base_runs, instr_runs)

    # the per-phase breakdown the server measured for us
    histograms = snapshot["histograms"]
    phases = {name: histograms[f"serve.phase.{name}"]
              for name in PHASES
              if histograms.get(f"serve.phase.{name}", {}).get("count")}
    assert "execute" in phases and "parse" in phases
    latency = histograms["serve.request_seconds"]
    assert latency["count"] >= len(corpus()) + \
        OVERHEAD_ROUNDS * OVERHEAD_REQUESTS

    # the artifacts CI uploads: one access line per request, and the
    # flight recorder dumped on drain
    lines = [json.loads(line)
             for line in access_path.read_text().splitlines()]
    assert len(lines) >= latency["count"]
    for line in lines[:20]:
        assert sum(line["phases"].values()) == pytest.approx(
            line["total_s"], rel=0.05, abs=1e-5), line
    flight = json.loads(flight_path.read_text())
    assert flight["slowest"], flight

    path = results_dir / "BENCH_serve.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload["observability"] = {
        "overhead_budget": OVERHEAD_BUDGET,
        "overhead_best_of_3": round(overhead, 4),
        "throughput_uninstrumented": [round(t, 1) for t in base_runs],
        "throughput_instrumented": [round(t, 1) for t in instr_runs],
        "request_seconds": {k: latency[k]
                            for k in ("count", "p50", "p90", "p99")},
        "phase_p50_s": {name: snap["p50"]
                        for name, snap in phases.items()},
        "access_log_lines": len(lines),
        "flight_recorded": flight["recorded"],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload['observability'], indent=2)}"
          f"\n[saved to {path}]")


def _fanout_throughput(port: int) -> float:
    """Aggregate warm throughput measured by ``CLUSTER_LOAD_PROCS``
    concurrent ``repro.serve.loadgen`` processes.  Separate processes
    keep the client side off one GIL, so the server arms — not the
    load generator — stay the bottleneck being measured."""
    per_proc_clients = CLUSTER_CLIENTS // CLUSTER_LOAD_PROCS
    per_proc_requests = CLUSTER_REQUESTS // CLUSTER_LOAD_PROCS
    procs = [subprocess.Popen(
        [sys.executable, "-m", "repro.serve.loadgen",
         "--port", str(port), "--clients", str(per_proc_clients),
         "--requests", str(per_proc_requests),
         "--kernels", ",".join(KERNELS), "--k", "8"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
        for _ in range(CLUSTER_LOAD_PROCS)]
    total = 0.0
    for proc in procs:
        out, _ = proc.communicate(timeout=300)
        assert proc.returncode == 0, out
        report = json.loads(out)
        assert report["failed"] == 0, report
        total += report["throughput_rps"]
    return total


def test_cluster_routing_overhead_and_scaling(
        tmp_path_factory, results_dir):
    """The cluster front-end's price and payoff, interleaved best-of-3
    over warm caches:

    * routing through ``--backends 1`` costs at most 10% of direct
      single-server throughput (the fault-free overhead gate);
    * ``--backends 2`` beats the one-backend cluster by >= 1.4x.

    Both ratio gates need true process parallelism, so they only
    assert when enough cores are available; the measurements land in
    ``BENCH_serve.json`` either way."""
    arms = {
        "direct": boot_server(tmp_path_factory.mktemp("cluster-direct")),
        "cluster_1": boot_cluster(
            tmp_path_factory.mktemp("cluster-one"), 1),
        "cluster_2": boot_cluster(
            tmp_path_factory.mktemp("cluster-two"), 2),
    }
    runs: dict[str, list[float]] = {name: [] for name in arms}
    try:
        # prime every arm so the measured rounds serve memo hits only
        for name, handle in arms.items():
            prime = run_load("127.0.0.1", handle["port"], corpus(),
                             clients=1, total_requests=len(corpus()))
            assert prime.failed == 0, (name, prime)

        # interleave the arms so machine drift hits all three equally
        for _ in range(CLUSTER_ROUNDS):
            for name, handle in arms.items():
                runs[name].append(_fanout_throughput(handle["port"]))

        with ServeClient("127.0.0.1", arms["cluster_2"]["port"]) as probe:
            counters = probe.metrics()["counters"]
    finally:
        for handle in arms.values():
            stop_server(handle)

    # the two-backend cluster really answered through the router
    forwarded = counters.get("router.forwarded", 0)
    assert forwarded >= CLUSTER_ROUNDS * CLUSTER_REQUESTS, counters
    assert counters.get("router.failovers", 0) == 0, counters

    overhead = 1.0 - max(runs["cluster_1"]) / max(runs["direct"])
    scaling = max(runs["cluster_2"]) / max(runs["cluster_1"])

    # router + backend need one core each before the overhead ratio
    # measures routing cost rather than timeslicing; the second
    # backend additionally needs a core of its own to scale at all
    if EFFECTIVE_CPUS >= 2:
        assert overhead <= CLUSTER_OVERHEAD_BUDGET, runs
    if EFFECTIVE_CPUS >= 3:
        assert scaling >= CLUSTER_SCALING_FLOOR, runs

    path = results_dir / "BENCH_serve.json"
    payload = json.loads(path.read_text()) if path.exists() else {}
    payload["cluster"] = {
        "effective_cpus": EFFECTIVE_CPUS,
        "clients": CLUSTER_CLIENTS,
        "requests_per_round": CLUSTER_REQUESTS,
        "load_processes": CLUSTER_LOAD_PROCS,
        "overhead_budget": CLUSTER_OVERHEAD_BUDGET,
        "routing_overhead_best_of_3": round(overhead, 4),
        "scaling_floor": CLUSTER_SCALING_FLOOR,
        "scaling_2_vs_1_best_of_3": round(scaling, 4),
        "gates_enforced": {"overhead": EFFECTIVE_CPUS >= 2,
                           "scaling": EFFECTIVE_CPUS >= 3},
        "throughput_rps": {name: [round(t, 1) for t in series]
                           for name, series in runs.items()},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload['cluster'], indent=2)}"
          f"\n[saved to {path}]")
