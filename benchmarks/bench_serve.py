"""Evidence for the allocation server (allocation-as-a-service shape).

Boots one ``repro serve`` process with a warm worker pool and a fresh
cache, then measures a cold single-client pass over the corpus followed
by warm 100-request runs at 1, 8, and 64 concurrent clients.  Gates:

* every response is byte-identical to a local batch-engine run;
* warm-cache 64-client throughput beats the single-client cold
  baseline by at least 5x;
* worker spawns stay amortized — at most pool-size spawns in total,
  and none at all during the warm (cache-hot) runs.

Writes latency percentiles and throughput per scenario to
``benchmarks/results/BENCH_serve.json``.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.engine import ExperimentEngine
from repro.serve import (ServeClient, dumps, request_from_json, run_load,
                         summary_to_json)

POOL_SIZE = min(4, os.cpu_count() or 1)
KERNELS = ("zeroin", "fehl", "spline", "decomp")
WARM_REQUESTS = 100
CLIENT_COUNTS = (1, 8, 64)


def corpus() -> list[dict]:
    return [{"kernel": name, "int_regs": 8, "float_regs": 8,
             "mode": mode}
            for name in KERNELS for mode in ("chaitin", "remat")]


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", str(POOL_SIZE), "--cache-dir", str(cache_dir),
         "--queue-limit", "512", "--max-batch", "64"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    announce = proc.stdout.readline().strip()
    assert announce.startswith("# serving on "), announce
    port = int(announce.rsplit(":", 1)[1])
    yield {"port": port, "proc": proc}
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=60)
    proc.stdout.close()


@pytest.fixture(scope="module")
def scenario_runs(server):
    port = server["port"]
    runs = {}

    with ServeClient("127.0.0.1", port) as probe:
        spawned_start = probe.metrics()["counters"].get("pool.spawned", 0)

    # cold: one client, every request a miss (pays spawn + execute)
    runs["cold_1"] = run_load("127.0.0.1", port, corpus(), clients=1,
                              total_requests=len(corpus()))

    with ServeClient("127.0.0.1", port) as probe:
        spawned_cold = probe.metrics()["counters"].get("pool.spawned", 0)

    # warm: the same corpus over a hot cache at increasing concurrency
    for clients in CLIENT_COUNTS:
        runs[f"warm_{clients}"] = run_load(
            "127.0.0.1", port, corpus(), clients=clients,
            total_requests=WARM_REQUESTS)

    with ServeClient("127.0.0.1", port) as probe:
        counters = probe.metrics()["counters"]

    runs["spawned_start"] = spawned_start
    runs["spawned_cold"] = spawned_cold
    runs["counters"] = counters
    return runs


def test_serve_throughput_and_amortization(scenario_runs, results_dir):
    cold = scenario_runs["cold_1"]
    warm64 = scenario_runs[f"warm_{CLIENT_COUNTS[-1]}"]
    counters = scenario_runs["counters"]

    for name in ("cold_1", *(f"warm_{c}" for c in CLIENT_COUNTS)):
        run = scenario_runs[name]
        assert run.failed == 0, (name, run)
        assert run.ok == run.requests, (name, run)

    # the perf gate: warm 64-client throughput >= 5x cold single-client
    assert warm64.throughput >= 5 * cold.throughput, \
        (warm64.throughput, cold.throughput)

    # spawn amortization: the cold pass spawns at most pool-size
    # workers, and the warm (cache-hot) runs spawn none at all
    spawned_total = counters.get("pool.spawned", 0)
    assert spawned_total - scenario_runs["spawned_start"] <= POOL_SIZE, \
        counters
    assert counters.get("pool.spawned", 0) == \
        scenario_runs["spawned_cold"], "warm runs spawned workers"

    # the warm runs were answered without re-execution
    assert counters["engine.executed"] == len(corpus())

    payload = {
        "pool_size": POOL_SIZE,
        "corpus": len(corpus()),
        "warm_requests": WARM_REQUESTS,
        "worker_spawns": spawned_total,
        "overload_rejections": counters.get(
            "serve.overload_rejections", 0),
        "deduplicated": counters.get("serve.deduplicated", 0),
        "speedup_warm64_vs_cold1": round(
            warm64.throughput / cold.throughput, 2)
        if cold.throughput else None,
        "runs": {name: scenario_runs[name].as_json()
                 for name in ("cold_1",
                              *(f"warm_{c}" for c in CLIENT_COUNTS))},
    }
    path = results_dir / "BENCH_serve.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {path}]")


def test_served_bytes_match_local_engine(server):
    """Acceptance gate: cold and warm server responses are both
    byte-identical to a local ``run_many`` over the same requests."""
    local = ExperimentEngine(jobs=1, use_cache=False)
    expected = [dumps(summary_to_json(o))
                for o in local.run_many([request_from_json(spec)
                                         for spec in corpus()])]
    with ServeClient("127.0.0.1", server["port"]) as client:
        served = [dumps(client.allocate(**spec)) for spec in corpus()]
        again = [dumps(client.allocate(**spec)) for spec in corpus()]
    assert served == expected
    assert again == expected


def test_warm_single_request_latency(server, benchmark):
    """The benchmarked operation: one warm round-trip (memo hit)."""
    with ServeClient("127.0.0.1", server["port"]) as client:
        payload = corpus()[0]
        client.allocate(**payload)  # ensure hot
        benchmark(lambda: client.allocate(**payload))
