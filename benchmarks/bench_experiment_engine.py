"""Evidence for the allocation-experiment engine (serve-many shape).

Regenerates the full Table 1 suite three ways — serial cold, parallel
cold, warm cache — asserts the renderings are byte-identical, and
writes the three wall-clock numbers to
``benchmarks/results/BENCH_experiments.json``.
"""

import json
import os
import time

import pytest

from repro.engine import ExperimentEngine, ResultCache
from repro.experiments import generate_table1


@pytest.fixture(scope="module")
def suite_runs(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("engine-cache")
    jobs = os.cpu_count() or 1

    t0 = time.perf_counter()
    serial = generate_table1(
        engine=ExperimentEngine(jobs=1, use_cache=False))
    serial_s = time.perf_counter() - t0

    parallel_engine = ExperimentEngine(jobs=jobs, cache_dir=cache_dir)
    t0 = time.perf_counter()
    parallel = generate_table1(engine=parallel_engine)
    parallel_s = time.perf_counter() - t0

    # a fresh engine over the now-populated cache: pure disk hits
    warm_engine = ExperimentEngine(jobs=jobs, cache_dir=cache_dir)
    t0 = time.perf_counter()
    warm = generate_table1(engine=warm_engine)
    warm_s = time.perf_counter() - t0

    return {
        "jobs": jobs,
        "cache_dir": cache_dir,
        "cache_entries": len(ResultCache(cache_dir)),
        "serial": (serial, serial_s),
        "parallel": (parallel, parallel_s),
        "warm": (warm, warm_s),
        "warm_stats": warm_engine.stats,
    }


def test_experiment_engine_suite(benchmark, suite_runs, results_dir):
    serial, serial_s = suite_runs["serial"]
    parallel, parallel_s = suite_runs["parallel"]
    warm, warm_s = suite_runs["warm"]

    # determinism: the three paths render the same bytes
    assert serial.render() == parallel.render() == warm.render()

    # the warm run answered everything from the persistent cache
    stats = suite_runs["warm_stats"]
    assert stats.executed == 0
    assert stats.cache_hits > 0
    assert suite_runs["cache_entries"] == stats.cache_hits \
        + stats.memo_hits

    # warm-cache regeneration must beat cold serial by 5x or more
    assert warm_s * 5 <= serial_s, (warm_s, serial_s)

    # parallel fan-out must beat serial whenever there are cores to
    # fan out to (spawn startup dominates on a single core)
    if suite_runs["jobs"] >= 2:
        assert parallel_s < serial_s, (parallel_s, serial_s)

    payload = {
        "suite": "table1",
        "kernels": len(serial.rows),
        "requests": 3 * len(serial.rows),
        "jobs": suite_runs["jobs"],
        "serial_cold_s": round(serial_s, 4),
        "parallel_cold_s": round(parallel_s, 4),
        "warm_cache_s": round(warm_s, 4),
        "speedup_warm_vs_serial": round(serial_s / warm_s, 2),
        "speedup_parallel_vs_serial": round(serial_s / parallel_s, 2),
        "byte_identical": True,
    }
    path = results_dir / "BENCH_experiments.json"
    try:
        merged = json.loads(path.read_text())
    except (OSError, ValueError):
        merged = {}
    merged.update(payload)
    path.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"\n{json.dumps(payload, indent=2)}\n[saved to {path}]")

    # the benchmarked operation: a warm regeneration over a fresh
    # engine (disk hits only)
    benchmark(lambda: generate_table1(
        engine=ExperimentEngine(jobs=1,
                                cache_dir=suite_runs["cache_dir"])))


def test_timing_requests_never_cached(tmp_path):
    """Acceptance guard: Table 2's engine path cannot serve wall-clock
    numbers from disk, because its requests are cacheable=False."""
    from repro.experiments import generate_table2

    engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
    table = generate_table2(routines=("repvid",), repeats=1,
                            engine=engine)
    assert table.columns[0][0].total > 0
    assert len(ResultCache(tmp_path)) == 0
    assert engine.stats.cache_hits == 0
