"""Build/liveness scaling: incremental maintenance vs. from-scratch.

Three races on generated functions of growing size (now up to ~80k
instructions), each written as one row of the scaling curve in
``results/BENCH_build.json``:

1. **Build race** (the original bench): ``compute_liveness`` +
   ``build_interference_graph`` against the seed set-based oracles in
   ``tests/reference_impl.py``.  The seed build is quadratic-ish, so
   this race only runs at the points where it finishes in reasonable
   time; the bitset build is timed everywhere.
2. **Spill-patch analysis race**: real allocation rounds are run to
   produce a genuine spill delta, then the incremental path
   (``LivenessInfo.apply_delta`` + ``InterferenceGraph.
   refresh_after_spill``) races a full recompute+rebuild over the
   post-spill code.  The patched results are diffed against the fresh
   ones, so the race is honest by construction.  The delta raced is
   the *steady-state* one — the deepest spilling round up to
   ``PATCH_ROUND`` — because round 1 at bench register pressure spills
   a near-global fraction of the ranges (87% of the blocks dirty at
   the largest point), which no patch scheme should be expected to
   beat by 2x; rounds 2+ are what the allocator's inner loop actually
   replays.  The CI gate lives here: at the largest point the raced
   round must be >= 2 and the incremental analysis must cost <= 0.5x
   the from-scratch one.
3. **End-to-end allocation race** (the 50k+ points): ``allocate()`` in
   its default incremental configuration against the pre-incremental
   configuration — from-scratch analyses every round
   (``incremental=False``) with the seed color phases preserved in
   ``tests/reference_impl.py``.  Both arms produce byte-identical
   output (asserted at a mid-size point).  Skippable with
   ``BENCH_E2E=0`` for quick runs; the JSON then carries nulls.
"""

from __future__ import annotations

import json
import os
import time

from repro.analysis import compute_liveness, diff_liveness
from repro.benchsuite import GeneratorConfig, KERNELS_BY_NAME, random_program
from repro.ir import function_to_text
from repro.machine import machine_with
from repro.passes import AnalysisManager
from repro.regalloc import (allocate, build_interference_graph,
                            run_renumber)
from repro.regalloc.coalesce import build_coalesce_loop
from repro.regalloc.interference import diff_graphs
from repro.regalloc.select import find_partners, select
from repro.regalloc.simplify import simplify
from repro.regalloc.spillcode import insert_spill_code
from repro.regalloc.spillcost import compute_spill_costs
from repro.remat import RenumberMode

from tests.reference_impl import (ref_build_interference_graph,
                                  ref_compute_liveness, ref_select,
                                  ref_simplify)

from .conftest import save_result

#: growing shapes: (label, generator config); sizes roughly double
SCALES = [
    ("gen-s", GeneratorConfig(n_vars=6, max_depth=2, max_stmts=5)),
    ("gen-m", GeneratorConfig(n_vars=10, max_depth=3, max_stmts=8)),
    ("gen-l", GeneratorConfig(n_vars=16, max_depth=4, max_stmts=10)),
    ("gen-xl", GeneratorConfig(n_vars=24, max_depth=4, max_stmts=16)),
    ("gen-2xl", GeneratorConfig(n_vars=28, max_depth=4, max_stmts=22)),
    ("gen-3xl", GeneratorConfig(n_vars=32, max_depth=4, max_stmts=24)),
    ("gen-4xl", GeneratorConfig(n_vars=30, max_depth=4, max_stmts=26)),
]
SEED = 7
REPEATS = 5
#: the seed set-based build is quadratic-ish; race it only where it
#: finishes in seconds (the bitset arm is timed at every point)
SEED_RACE_MAX_INSTS = 10_000
#: end-to-end allocation race threshold: the issue's 50k+ points
E2E_MIN_INSTS = 30_000
#: mid-size point where both end-to-end arms are asserted byte-identical
E2E_EQUIV_POINT = "gen-l"
#: deepest round whose spill delta the patch race captures: round 1 at
#: bench pressure dirties ~87% of the blocks (near-global), rounds 2-3
#: are the steady-state deltas the allocator's inner loop replays
PATCH_ROUND = 3
BENCH_MACHINE = machine_with(10, 10)
RUN_E2E = os.environ.get("BENCH_E2E", "1") != "0"


def _post_renumber(fn):
    """The allocator builds on post-renumber code; match that shape."""
    fn.remove_unreachable_blocks()
    fn.split_critical_edges()
    run_renumber(fn, RenumberMode.REMAT)
    return fn


def _specimens():
    for label, config in SCALES:
        yield label, _post_renumber(random_program(SEED, config))
    yield "twldrv", _post_renumber(KERNELS_BY_NAME["twldrv"].compile())


def _time(job, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        job()
        best = min(best, time.perf_counter() - t0)
    return best


def _time_with_setup(setup, job, repeats: int = REPEATS) -> float:
    """Best-of-N where each iteration gets fresh state from *setup*
    (for destructive jobs); only *job* is inside the timed region."""
    best = float("inf")
    for _ in range(repeats):
        state = setup()
        t0 = time.perf_counter()
        job(state)
        best = min(best, time.perf_counter() - t0)
    return best


def _bitset_build(fn):
    liveness = compute_liveness(fn)
    return build_interference_graph(fn, liveness)


def _seed_build(fn):
    ref_compute_liveness(fn)                 # seed build recomputed its own
    return ref_build_interference_graph(fn)  # liveness internally, so both


def _spill_rounds(fn, machine, rounds=1):
    """Advance *fn* in place through up to *rounds* real allocation
    rounds (renumber, build-coalesce, color, spill insertion each) and
    capture the deepest round that spilled: its post-coalesce graph,
    its pre-spill liveness, its spill delta, and its round number — or
    ``None`` if round 1 already colors.  *fn* is left exactly as the
    captured round's spill insertion left it, so the caller can race
    the delta patch against from-scratch analyses of that code."""
    captured = None
    for round_no in range(1, rounds + 1):
        if round_no > 1:
            run_renumber(fn, RenumberMode.REMAT)
        am = AnalysisManager(fn)
        liveness = am.liveness()
        loops = am.loops()
        graph, _ = build_coalesce_loop(fn, machine,
                                       build_interference_graph,
                                       liveness=liveness)
        costs = compute_spill_costs(fn, loops, machine)
        order = simplify(graph, machine, costs)
        chosen = select(graph, order, machine, partners=find_partners(fn))
        chosen.spilled.extend(order.pessimistic_spills)
        if not chosen.spilled:
            break
        pristine = liveness.clone()
        spill_stats = insert_spill_code(fn, chosen.spilled, costs)
        captured = (graph, pristine, spill_stats.delta, round_no)
    return captured


def _patch_race(fn, graph, pristine, delta, patch_round):
    """Race the incremental spill-patch analysis against from-scratch
    over the post-spill code; diff both results so the race is
    honest."""
    patched = pristine.clone()
    update_stats = patched.apply_delta(delta)
    fresh_liveness = compute_liveness(fn)
    problems = diff_liveness(patched, fresh_liveness)
    assert not problems, problems[:5]

    patched_graph = graph.clone()
    patch_stats = patched_graph.refresh_after_spill(fn, patched, delta)
    fresh_graph = build_interference_graph(fn, patched)
    problems = diff_graphs(patched_graph, fresh_graph)
    assert not problems, problems[:5]
    # the acceptance reconciliation: every incremental update touches a
    # strict subset of the blocks
    assert update_stats.blocks_reanalyzed < update_stats.blocks_total

    t_liveness_update = _time_with_setup(
        pristine.clone, lambda lv: lv.apply_delta(delta))
    t_liveness_full = _time(lambda: compute_liveness(fn))
    t_graph_patch = _time_with_setup(
        graph.clone, lambda g: g.refresh_after_spill(fn, patched, delta))
    t_graph_full = _time(lambda: build_interference_graph(fn, patched))
    return {
        "patch_round": patch_round,
        "liveness_update_seconds": round(t_liveness_update, 6),
        "liveness_full_seconds": round(t_liveness_full, 6),
        "graph_patch_seconds": round(t_graph_patch, 6),
        "graph_full_seconds": round(t_graph_full, 6),
        "patch_incremental_seconds": round(
            t_liveness_update + t_graph_patch, 6),
        "patch_from_scratch_seconds": round(
            t_liveness_full + t_graph_full, 6),
        "patch_speedup": round((t_liveness_full + t_graph_full)
                               / (t_liveness_update + t_graph_patch), 2),
        "blocks_reanalyzed": update_stats.blocks_reanalyzed,
        "blocks_rescanned": patch_stats.blocks_rescanned,
        "blocks_total": update_stats.blocks_total,
        "edges_patched": patch_stats.edges_patched,
    }


def _allocate_incremental(fn):
    return allocate(fn, machine=BENCH_MACHINE, mode=RenumberMode.REMAT)


def _allocate_baseline(fn):
    """The pre-incremental configuration: from-scratch analyses every
    round plus the seed color phases (monkeypatched in for the timing
    run, restored immediately after)."""
    import repro.regalloc.allocator as allocator_mod

    saved = (allocator_mod.simplify, allocator_mod.select)
    allocator_mod.simplify = ref_simplify
    allocator_mod.select = ref_select
    try:
        return allocate(fn, machine=BENCH_MACHINE, mode=RenumberMode.REMAT,
                        incremental=False)
    finally:
        allocator_mod.simplify, allocator_mod.select = saved


def _e2e_race(config, equivalence: bool):
    fn = random_program(SEED, config)
    t0 = time.perf_counter()
    inc = _allocate_incremental(fn)
    t_inc = time.perf_counter() - t0
    t0 = time.perf_counter()
    base = _allocate_baseline(fn)
    t_base = time.perf_counter() - t0
    if equivalence:
        assert (function_to_text(inc.function)
                == function_to_text(base.function))
    assert base.stats.n_liveness_updates == 0
    return {
        "rounds": inc.stats.n_rounds,
        "e2e_incremental_seconds": round(t_inc, 4),
        "e2e_baseline_seconds": round(t_base, 4),
        "e2e_speedup": round(t_base / t_inc, 2),
    }


def test_build_scaling(results_dir):
    rows = []
    configs = dict(SCALES)
    for label, fn in _specimens():
        row = {
            "name": label,
            "n_insts": fn.size(),
            "n_blocks": len(fn.blocks),
            "n_regs": len(fn.all_regs()),
        }
        graph = _bitset_build(fn)
        row["n_edges"] = graph.n_edges()
        row["bitset_seconds"] = round(_time(lambda: _bitset_build(fn)), 6)
        if fn.size() <= SEED_RACE_MAX_INSTS:
            ref = ref_build_interference_graph(fn)
            assert graph.n_edges() == ref.n_edges()  # same graph, honest race
            row["seed_seconds"] = round(_time(lambda: _seed_build(fn)), 6)
            row["speedup"] = round(row["seed_seconds"]
                                   / row["bitset_seconds"], 2)
        else:
            row["seed_seconds"] = None
            row["speedup"] = None

        fixture = _spill_rounds(fn, BENCH_MACHINE, rounds=PATCH_ROUND)
        if fixture is not None:
            row.update(_patch_race(fn, *fixture))
        else:
            row["patch_speedup"] = None

        if RUN_E2E and label in configs and fn.size() >= E2E_MIN_INSTS:
            row.update(_e2e_race(configs[label],
                                 equivalence=label == E2E_EQUIV_POINT))
        elif RUN_E2E and label == E2E_EQUIV_POINT:
            # cheap point: only the byte-identity check, no timing row
            _e2e_race(configs[label], equivalence=True)
        rows.append(row)

    header = (f"{'function':>10} {'insts':>6} {'blocks':>6} {'edges':>8} "
              f"{'build(s)':>9} {'rd':>3} {'patch full':>10} "
              f"{'patch incr':>10} {'patch x':>8} "
              f"{'e2e base':>9} {'e2e incr':>9} {'e2e x':>6}")
    lines = [header, "-" * len(header)]
    for r in rows:
        def cell(key, width, fmt="{:.4f}"):
            v = r.get(key)
            return ("-" if v is None else fmt.format(v)).rjust(width)
        lines.append(
            f"{r['name']:>10} {r['n_insts']:>6} {r['n_blocks']:>6} "
            f"{r['n_edges']:>8}"
            + cell("bitset_seconds", 10)
            + cell("patch_round", 4, "{:d}")
            + cell("patch_from_scratch_seconds", 11)
            + cell("patch_incremental_seconds", 11)
            + cell("patch_speedup", 9, "{:.1f}x")
            + cell("e2e_baseline_seconds", 10, "{:.1f}")
            + cell("e2e_incremental_seconds", 10, "{:.1f}")
            + cell("e2e_speedup", 7, "{:.1f}x"))
    save_result(results_dir, "bench_build_scaling", "\n".join(lines))

    largest = max(rows, key=lambda r: r["n_insts"])
    payload = {
        "benchmark": "build_scaling",
        "unit": "seconds (best of %d)" % REPEATS,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {"int_regs": BENCH_MACHINE.int_regs,
                    "float_regs": BENCH_MACHINE.float_regs},
        "arms": {
            "seed": "seed set-based liveness + build (reference_impl)",
            "bitset": "dense-bitset liveness + build, from scratch",
            "patch_from_scratch": "full liveness recompute + full graph "
                                  "rebuild over the post-spill code of "
                                  "the captured round (patch_round)",
            "patch_incremental": "apply_delta liveness patch + "
                                 "refresh_after_spill graph patch for "
                                 "the same round's spill delta",
            "e2e_baseline": "allocate(incremental=False) with the seed "
                            "color phases (the pre-incremental allocator)",
            "e2e_incremental": "allocate() default: incremental analyses "
                               "+ bitset color phases",
        },
        "rows": rows,
        "largest": largest["name"],
        "largest_patch_round": largest.get("patch_round"),
        "largest_patch_speedup": largest.get("patch_speedup"),
        "largest_e2e_speedup": largest.get("e2e_speedup"),
    }
    (results_dir / "BENCH_build.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    # original acceptance: >= 2x over the seed build on the largest
    # seed-raced generated function
    largest_gen = max((r for r in rows if r["name"].startswith("gen")
                       and r.get("speedup") is not None),
                      key=lambda r: r["n_insts"])
    assert largest_gen["speedup"] >= 2.0, largest_gen

    # CI gate: at the largest bench point the incremental analysis of a
    # round-2+ spill delta must cost <= 0.5x the from-scratch rebuild
    assert largest.get("patch_speedup") is not None, largest
    assert largest["patch_round"] >= 2, largest
    assert (largest["patch_incremental_seconds"]
            <= 0.5 * largest["patch_from_scratch_seconds"]), largest

    # end-to-end: >= 2x at every 50k+ point where the baseline arm ran
    for r in rows:
        if r["n_insts"] >= 50_000 and r.get("e2e_speedup") is not None:
            assert r["rounds"] >= 2, r
            assert r["e2e_speedup"] >= 2.0, r
