"""Build/liveness scaling: bitset engine vs. the seed set-based oracle.

Times ``compute_liveness`` + ``build_interference_graph`` (the
allocator's *Build* phase inputs, the dominant per-round cost in the
paper's Table 2) on generated functions of growing size, against the
seed implementations preserved in ``tests/reference_impl.py``.

Beyond the human-readable table in ``results/bench_build_scaling.txt``,
the run writes machine-readable ``results/BENCH_build.json`` so future
PRs can track the performance trajectory point by point.
"""

from __future__ import annotations

import json
import time

from repro.analysis import compute_liveness
from repro.benchsuite import GeneratorConfig, KERNELS_BY_NAME, random_program
from repro.regalloc import build_interference_graph, run_renumber
from repro.remat import RenumberMode

from tests.reference_impl import (ref_build_interference_graph,
                                  ref_compute_liveness)

from .conftest import save_result

#: growing shapes: (label, generator config); sizes roughly double
SCALES = [
    ("gen-s", GeneratorConfig(n_vars=6, max_depth=2, max_stmts=5)),
    ("gen-m", GeneratorConfig(n_vars=10, max_depth=3, max_stmts=8)),
    ("gen-l", GeneratorConfig(n_vars=16, max_depth=4, max_stmts=10)),
    ("gen-xl", GeneratorConfig(n_vars=24, max_depth=4, max_stmts=16)),
]
SEED = 7
REPEATS = 5


def _post_renumber(fn):
    """The allocator builds on post-renumber code; match that shape."""
    fn.remove_unreachable_blocks()
    fn.split_critical_edges()
    run_renumber(fn, RenumberMode.REMAT)
    return fn


def _specimens():
    for label, config in SCALES:
        yield label, _post_renumber(random_program(SEED, config))
    yield "twldrv", _post_renumber(KERNELS_BY_NAME["twldrv"].compile())


def _time(job, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        job()
        best = min(best, time.perf_counter() - t0)
    return best


def _bitset_build(fn):
    liveness = compute_liveness(fn)
    return build_interference_graph(fn, liveness)


def _seed_build(fn):
    ref_compute_liveness(fn)                 # seed build recomputed its own
    return ref_build_interference_graph(fn)  # liveness internally, so both


def test_build_scaling(results_dir):
    rows = []
    for label, fn in _specimens():
        graph = _bitset_build(fn)
        ref = ref_build_interference_graph(fn)
        assert graph.n_edges() == ref.n_edges()   # same graph, honest race
        t_new = _time(lambda: _bitset_build(fn))
        t_old = _time(lambda: _seed_build(fn))
        rows.append({
            "name": label,
            "n_insts": fn.size(),
            "n_blocks": len(fn.blocks),
            "n_regs": len(fn.all_regs()),
            "n_edges": graph.n_edges(),
            "seed_seconds": round(t_old, 6),
            "bitset_seconds": round(t_new, 6),
            "speedup": round(t_old / t_new, 2),
        })

    header = (f"{'function':>10} {'insts':>6} {'regs':>6} {'edges':>7} "
              f"{'seed(s)':>9} {'bitset(s)':>10} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(f"{r['name']:>10} {r['n_insts']:>6} {r['n_regs']:>6} "
                     f"{r['n_edges']:>7} {r['seed_seconds']:>9.4f} "
                     f"{r['bitset_seconds']:>10.4f} {r['speedup']:>7.1f}x")
    save_result(results_dir, "bench_build_scaling", "\n".join(lines))

    payload = {
        "benchmark": "build_scaling",
        "unit": "seconds (best of %d)" % REPEATS,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rows": rows,
        "largest": max(rows, key=lambda r: r["n_insts"])["name"],
        "largest_speedup": max(rows, key=lambda r: r["n_insts"])["speedup"],
    }
    (results_dir / "BENCH_build.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    # acceptance: >= 2x on the largest generated function
    largest_gen = max((r for r in rows if r["name"].startswith("gen")),
                      key=lambda r: r["n_insts"])
    assert largest_gen["speedup"] >= 2.0, largest_gen
