"""Throughput benchmarks for the substrates: interpreter, SSA
construction, interference-graph build, liveness and the front end.

These are not paper experiments but keep the reproduction's moving parts
honest — a slow substrate would distort Table 2's phase proportions.
"""

import pytest

from repro.analysis import compute_dominance, compute_liveness, compute_loops
from repro.benchsuite import KERNELS_BY_NAME
from repro.frontend import compile_source
from repro.interp import run_function
from repro.regalloc import build_interference_graph, run_renumber
from repro.remat import RenumberMode
from repro.ssa import construct_ssa

BIG = KERNELS_BY_NAME["twldrv"]


def test_interpreter_throughput(benchmark):
    fn = BIG.compile()
    run = benchmark(lambda: run_function(fn, args=list(BIG.args)))
    assert run.steps > 10_000


def test_frontend_throughput(benchmark):
    benchmark(lambda: compile_source(BIG.source))


def test_ssa_construction_throughput(benchmark):
    def job():
        fn = BIG.compile()
        fn.split_critical_edges()
        return construct_ssa(fn)

    benchmark(job)


def test_liveness_throughput(benchmark):
    fn = BIG.compile()
    benchmark(lambda: compute_liveness(fn))


def test_dominance_and_loops_throughput(benchmark):
    fn = BIG.compile()

    def job():
        dom = compute_dominance(fn)
        return compute_loops(fn, dom)

    benchmark(job)


def test_interference_build_throughput(benchmark):
    fn = BIG.compile()
    fn.split_critical_edges()
    run_renumber(fn, RenumberMode.REMAT)
    graph = benchmark(lambda: build_interference_graph(fn))
    assert graph.n_edges() > 100


def test_interference_rebuild_with_cached_liveness(benchmark):
    """The coalesce-loop fast path: rebuilds reuse the round's liveness
    fixed point instead of recomputing it."""
    fn = BIG.compile()
    fn.split_critical_edges()
    run_renumber(fn, RenumberMode.REMAT)
    liveness = compute_liveness(fn)
    graph = benchmark(lambda: build_interference_graph(fn, liveness))
    assert graph.n_edges() > 100
