"""Throughput benchmarks for the substrates: interpreter, SSA
construction, interference-graph build, liveness and the front end.

These are not paper experiments but keep the reproduction's moving parts
honest — a slow substrate would distort Table 2's phase proportions.
"""

import time

import pytest

from repro.analysis import compute_dominance, compute_liveness, compute_loops
from repro.benchsuite import KERNELS_BY_NAME
from repro.frontend import compile_source
from repro.interp import run_function
from repro.obs import Tracer
from repro.regalloc import allocate, build_interference_graph, run_renumber
from repro.remat import RenumberMode
from repro.ssa import construct_ssa

BIG = KERNELS_BY_NAME["twldrv"]


def test_interpreter_throughput(benchmark):
    fn = BIG.compile()
    run = benchmark(lambda: run_function(fn, args=list(BIG.args)))
    assert run.steps > 10_000


def test_frontend_throughput(benchmark):
    benchmark(lambda: compile_source(BIG.source))


def test_ssa_construction_throughput(benchmark):
    def job():
        fn = BIG.compile()
        fn.split_critical_edges()
        return construct_ssa(fn)

    benchmark(job)


def test_liveness_throughput(benchmark):
    fn = BIG.compile()
    benchmark(lambda: compute_liveness(fn))


def test_dominance_and_loops_throughput(benchmark):
    fn = BIG.compile()

    def job():
        dom = compute_dominance(fn)
        return compute_loops(fn, dom)

    benchmark(job)


def test_interference_build_throughput(benchmark):
    fn = BIG.compile()
    fn.split_critical_edges()
    run_renumber(fn, RenumberMode.REMAT)
    graph = benchmark(lambda: build_interference_graph(fn))
    assert graph.n_edges() > 100


def test_span_machinery_throughput(benchmark):
    """Raw cost of the span open/close path (two clock calls plus list
    bookkeeping) — the whole per-phase price of tracing."""
    def job():
        tracer = Tracer()
        with tracer.span("allocate"):
            for i in range(100):
                with tracer.span("round", index=i):
                    pass
        return tracer

    tracer = benchmark(job)
    assert len(tracer.root.children) == 100


def test_disabled_tracer_overhead_under_three_percent():
    """ISSUE acceptance: the disabled tracing path costs < 3% of a
    kernel-suite allocation.

    Measured structurally rather than by differencing two noisy
    end-to-end timings: count the spans and event-guard checks one real
    ``twldrv`` allocation performs, time that much span machinery in
    isolation, and compare against the allocation's own wall clock.
    """
    fn = BIG.compile()
    allocate(fn)  # warm every lru_cache / import before timing
    alloc_time = min(_timed_allocation(fn) for _ in range(3))

    # a captured run tells us how many spans and events a traced
    # allocation of this kernel produces; each emitted event sits
    # behind one ``events_enabled`` guard on the disabled path
    tracer = Tracer(capture_events=True)
    traced = allocate(BIG.compile(), tracer=tracer)
    n_spans = sum(1 for _ in traced.trace.walk())
    n_guards = traced.trace.n_events()

    reps = 100
    t0 = time.perf_counter()
    for _ in range(reps):
        probe = Tracer()
        with probe.span("allocate"):
            for _ in range(n_spans - 1):
                with probe.span("phase"):
                    pass
            for _ in range(n_guards):
                if probe.events_enabled:
                    pass  # pragma: no cover - guard is always False
    tracing_cost = (time.perf_counter() - t0) / reps

    assert tracing_cost < 0.03 * alloc_time, (
        f"span/guard machinery {tracing_cost * 1e3:.3f}ms vs allocation "
        f"{alloc_time * 1e3:.3f}ms ({tracing_cost / alloc_time:.1%})")


def _timed_allocation(fn) -> float:
    t0 = time.perf_counter()
    allocate(fn.clone())
    return time.perf_counter() - t0


def test_interference_rebuild_with_cached_liveness(benchmark):
    """The coalesce-loop fast path: rebuilds reuse the round's liveness
    fixed point instead of recomputing it."""
    fn = BIG.compile()
    fn.split_critical_edges()
    run_renumber(fn, RenumberMode.REMAT)
    liveness = compute_liveness(fn)
    graph = benchmark(lambda: build_interference_graph(fn, liveness))
    assert graph.n_edges() > 100


# -- pass-pipeline overhead -------------------------------------------------------

def _direct_allocate(fn, machine, mode):
    """The pre-refactor allocation loop: phase functions called directly
    with no AnalysisManager and no invalidation bookkeeping — the
    baseline the pipeline-managed ``allocate`` is raced against.  Spans
    and the final verification are kept (both predate the pass layer),
    so the race isolates exactly the manager's cost.
    Decision-for-decision identical by construction (asserted below)."""
    from repro.analysis import compute_dominance, compute_loops
    from repro.ir import verify_function
    from repro.regalloc.allocator import AllocationStats, _assign_physical
    from repro.regalloc.coalesce import build_coalesce_loop
    from repro.regalloc.select import find_partners, select
    from repro.regalloc.simplify import simplify
    from repro.regalloc.spillcode import insert_spill_code
    from repro.regalloc.spillcost import compute_spill_costs

    tracer = Tracer()
    with tracer.span("allocate", fn=fn.name, mode=mode.value,
                     machine=machine.name):
        with tracer.span("clone"):
            work = fn.clone()
        work.remove_unreachable_blocks()
        work.split_critical_edges()
        with tracer.span("cfa"):
            dom = compute_dominance(work)
            loops = compute_loops(work, dom)
        stats = AllocationStats()
        no_spill_regs = set()
        for round_index in range(50):
            with tracer.span("round", index=round_index):
                with tracer.span("renumber"):
                    outcome = run_renumber(work, mode, dom=dom,
                                           no_spill_regs=no_spill_regs,
                                           tracer=tracer)
                no_spill = outcome.no_spill
                with tracer.span("build"):
                    liveness = compute_liveness(work)
                    graph, _cstats = build_coalesce_loop(
                        work, machine, build_interference_graph,
                        no_spill=no_spill, coalesce_splits=True,
                        liveness=liveness, tracer=tracer)
                with tracer.span("costs"):
                    costs = compute_spill_costs(work, loops, machine,
                                                no_spill=no_spill,
                                                tracer=tracer)
                with tracer.span("color"):
                    order = simplify(graph, machine, costs, tracer=tracer)
                    chosen = select(graph, order, machine,
                                    partners=find_partners(work),
                                    tracer=tracer)
                    chosen.spilled.extend(order.pessimistic_spills)
                if not chosen.spilled:
                    _assign_physical(work, chosen.coloring, stats)
                    break
                with tracer.span("spill"):
                    spill_stats = insert_spill_code(work, chosen.spilled,
                                                    costs)
                no_spill_regs = no_spill | spill_stats.new_temps
        else:
            raise AssertionError("direct replica did not converge")
        verify_function(work, require_physical=True,
                        max_int_reg=machine.int_regs,
                        max_float_reg=machine.float_regs)
    return work


def _direct_optimize(fn, max_rounds=4):
    """The pre-refactor ``optimize`` fixed point: raw transform calls,
    no shared manager, no PassPipeline."""
    from repro.opt.dce import eliminate_dead_code
    from repro.opt.licm import hoist_loop_invariants
    from repro.opt.lvn import run_lvn

    for _ in range(max_rounds):
        lvn = run_lvn(fn)
        licm = hoist_loop_invariants(fn)
        dce = eliminate_dead_code(fn)
        if lvn.replaced == 0 and licm.hoisted == 0 and dce.removed == 0:
            break


def _race(job_a, job_b, repeats=15):
    """Best-of-N for two jobs with interleaved samples, so clock-speed
    drift hits both sides equally."""
    job_a(), job_b()  # warm caches outside the timed region
    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        job_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        job_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def test_pass_overhead_within_two_percent(results_dir):
    """ISSUE acceptance: driving allocation through the pass layer (one
    AnalysisManager, PreservedAnalyses invalidation) costs <= 2% over
    direct phase calls on a whole kernel-suite run, and the
    redundant-analysis accounting shows what the manager saves."""
    import json

    from repro.benchsuite import FMM_KERNELS
    from repro.ir import function_to_text
    from repro.machine import machine_with
    from repro.opt import optimize

    machine = machine_with(8, 8)
    mode = RenumberMode.REMAT
    fns = [kernel.compile() for kernel in FMM_KERNELS]

    totals = {"rounds": 0, "computed": 0, "reused": 0, "liveness": 0}
    for fn in fns:
        result = allocate(fn.clone(), machine=machine, mode=mode)
        direct_fn = _direct_allocate(fn, machine, mode)
        assert function_to_text(result.function) == \
            function_to_text(direct_fn), fn.name
        stats = result.stats
        # the manager bounds recomputation: two liveness fixed points
        # per round (SSA pruning + build), CFG analyses exactly once
        assert stats.n_liveness_computed == 2 * stats.n_rounds
        assert stats.n_analyses_computed == stats.n_liveness_computed + 2
        totals["rounds"] += stats.n_rounds
        totals["computed"] += stats.n_analyses_computed
        totals["reused"] += stats.n_analyses_reused
        totals["liveness"] += stats.n_liveness_computed

    def managed_suite():
        for fn in fns:
            allocate(fn.clone(), machine=machine, mode=mode)

    def direct_suite():
        for fn in fns:
            _direct_allocate(fn, machine, mode)

    t_managed, t_direct = _race(managed_suite, direct_suite)
    alloc_ratio = t_managed / t_direct

    opt_seed = BIG.compile()
    t_opt_managed, t_opt_direct = _race(
        lambda: optimize(opt_seed.clone()),
        lambda: _direct_optimize(opt_seed.clone()))

    payload = {
        "benchmark": "pass_overhead",
        "unit": "seconds (best of 7, interleaved)",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "suite": f"FMM x {len(fns)} kernels",
        "machine": machine.name,
        "allocate_managed_seconds": round(t_managed, 6),
        "allocate_direct_seconds": round(t_direct, 6),
        "allocate_overhead_ratio": round(alloc_ratio, 4),
        "optimize_managed_seconds": round(t_opt_managed, 6),
        "optimize_direct_seconds": round(t_opt_direct, 6),
        "optimize_overhead_ratio": round(t_opt_managed / t_opt_direct, 4),
        "suite_rounds": totals["rounds"],
        "analyses_computed": totals["computed"],
        "analyses_reused": totals["reused"],
        "liveness_computed": totals["liveness"],
    }
    (results_dir / "BENCH_passes.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    print("\n" + json.dumps(payload, indent=2))
    assert alloc_ratio <= 1.02, payload


# -- supervised-executor overhead -------------------------------------------------

def test_supervised_overhead_within_five_percent(results_dir):
    """ISSUE acceptance: the supervised executor (per-request pipes,
    deadline bookkeeping, crash watching) costs < 5% over a plain
    ``multiprocessing.Pool.map`` on the same fault-free batch."""
    import json
    import multiprocessing

    from repro.engine import execute_request, request_key
    from repro.engine.supervisor import run_supervised
    from repro.machine import machine_with

    kernel = KERNELS_BY_NAME["repvid"]
    from repro.experiments import kernel_request

    requests = [kernel_request(kernel, machine_with(k, k), mode)
                for k in range(4, 24)
                for mode in (RenumberMode.CHAITIN, RenumberMode.REMAT)]
    items = [(request_key(r), r) for r in requests]
    jobs = 2
    ctx = multiprocessing.get_context("spawn")

    def pool_suite():
        with ctx.Pool(jobs) as pool:
            pool.map(execute_request, requests)

    def supervised_suite():
        outcomes, stats = run_supervised(items, jobs)
        assert stats.retries == 0 and stats.worker_crashes == 0
        assert len(outcomes) == len(items)

    t_supervised, t_pool = _race(supervised_suite, pool_suite, repeats=5)
    ratio = t_supervised / t_pool

    payload = {
        "requests": len(requests),
        "jobs": jobs,
        "unit": "seconds (best of 5, interleaved)",
        "pool_map_seconds": round(t_pool, 4),
        "supervised_seconds": round(t_supervised, 4),
        "overhead_ratio": round(ratio, 4),
    }
    # merge beside the engine-suite numbers rather than clobbering them
    path = results_dir / "BENCH_experiments.json"
    merged = json.loads(path.read_text()) if path.exists() else {}
    merged["supervised_overhead"] = payload
    path.write_text(json.dumps(merged, indent=2) + "\n")
    print("\n" + json.dumps(payload, indent=2))
    assert ratio <= 1.05, payload
