"""Throughput benchmarks for the substrates: interpreter, SSA
construction, interference-graph build, liveness and the front end.

These are not paper experiments but keep the reproduction's moving parts
honest — a slow substrate would distort Table 2's phase proportions.
"""

import time

import pytest

from repro.analysis import compute_dominance, compute_liveness, compute_loops
from repro.benchsuite import KERNELS_BY_NAME
from repro.frontend import compile_source
from repro.interp import run_function
from repro.obs import Tracer
from repro.regalloc import allocate, build_interference_graph, run_renumber
from repro.remat import RenumberMode
from repro.ssa import construct_ssa

BIG = KERNELS_BY_NAME["twldrv"]


def test_interpreter_throughput(benchmark):
    fn = BIG.compile()
    run = benchmark(lambda: run_function(fn, args=list(BIG.args)))
    assert run.steps > 10_000


def test_frontend_throughput(benchmark):
    benchmark(lambda: compile_source(BIG.source))


def test_ssa_construction_throughput(benchmark):
    def job():
        fn = BIG.compile()
        fn.split_critical_edges()
        return construct_ssa(fn)

    benchmark(job)


def test_liveness_throughput(benchmark):
    fn = BIG.compile()
    benchmark(lambda: compute_liveness(fn))


def test_dominance_and_loops_throughput(benchmark):
    fn = BIG.compile()

    def job():
        dom = compute_dominance(fn)
        return compute_loops(fn, dom)

    benchmark(job)


def test_interference_build_throughput(benchmark):
    fn = BIG.compile()
    fn.split_critical_edges()
    run_renumber(fn, RenumberMode.REMAT)
    graph = benchmark(lambda: build_interference_graph(fn))
    assert graph.n_edges() > 100


def test_span_machinery_throughput(benchmark):
    """Raw cost of the span open/close path (two clock calls plus list
    bookkeeping) — the whole per-phase price of tracing."""
    def job():
        tracer = Tracer()
        with tracer.span("allocate"):
            for i in range(100):
                with tracer.span("round", index=i):
                    pass
        return tracer

    tracer = benchmark(job)
    assert len(tracer.root.children) == 100


def test_disabled_tracer_overhead_under_three_percent():
    """ISSUE acceptance: the disabled tracing path costs < 3% of a
    kernel-suite allocation.

    Measured structurally rather than by differencing two noisy
    end-to-end timings: count the spans and event-guard checks one real
    ``twldrv`` allocation performs, time that much span machinery in
    isolation, and compare against the allocation's own wall clock.
    """
    fn = BIG.compile()
    allocate(fn)  # warm every lru_cache / import before timing
    alloc_time = min(_timed_allocation(fn) for _ in range(3))

    # a captured run tells us how many spans and events a traced
    # allocation of this kernel produces; each emitted event sits
    # behind one ``events_enabled`` guard on the disabled path
    tracer = Tracer(capture_events=True)
    traced = allocate(BIG.compile(), tracer=tracer)
    n_spans = sum(1 for _ in traced.trace.walk())
    n_guards = traced.trace.n_events()

    reps = 100
    t0 = time.perf_counter()
    for _ in range(reps):
        probe = Tracer()
        with probe.span("allocate"):
            for _ in range(n_spans - 1):
                with probe.span("phase"):
                    pass
            for _ in range(n_guards):
                if probe.events_enabled:
                    pass  # pragma: no cover - guard is always False
    tracing_cost = (time.perf_counter() - t0) / reps

    assert tracing_cost < 0.03 * alloc_time, (
        f"span/guard machinery {tracing_cost * 1e3:.3f}ms vs allocation "
        f"{alloc_time * 1e3:.3f}ms ({tracing_cost / alloc_time:.1%})")


def _timed_allocation(fn) -> float:
    t0 = time.perf_counter()
    allocate(fn.clone())
    return time.perf_counter() - t0


def test_interference_rebuild_with_cached_liveness(benchmark):
    """The coalesce-loop fast path: rebuilds reuse the round's liveness
    fixed point instead of recomputing it."""
    fn = BIG.compile()
    fn.split_critical_edges()
    run_renumber(fn, RenumberMode.REMAT)
    liveness = compute_liveness(fn)
    graph = benchmark(lambda: build_interference_graph(fn, liveness))
    assert graph.n_edges() > 100
