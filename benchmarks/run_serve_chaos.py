"""The serve chaos suite: a real cluster under injected faults.

Usage::

    PYTHONPATH=src python benchmarks/run_serve_chaos.py [--backends N]
        [--requests N] [--seed N] [--out DIR]

Boots ``repro serve --backends N`` (router + real backend processes
sharing one sharded cache), loads a :class:`ServeFaultPlan` that kills
one backend per shard mid-request, drops one reply on the floor and
garbles another, then drives the corpus through a
:class:`ResilientClient` fleet and reconciles:

* every admitted request is answered exactly once — byte-identical to
  a fault-free serial engine run — or failed with a typed error;
* each planned fault fired exactly once, across backend restarts;
* the supervisor replaced every corpse and the cluster returned to
  full health, after which the whole corpus answers again.

Writes ``report.json`` and the routers' aggregated flight-recorder
dump (``flight.json``) under ``benchmarks/results/serve_chaos/``; CI
uploads the directory as an artifact and the exit status is nonzero
when any reconciliation fails — see ``docs/robustness.md``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import time
from concurrent import futures

from repro.engine import (ExperimentEngine, ServeFaultPlan, request_key)
from repro.ir import IRBuilder, function_to_text
from repro.serve import (ClusterConfig, ClusterHarness, HashRing,
                         ResilientClient, RouterConfig, ServeClient,
                         dumps, protocol, request_from_json,
                         summary_to_json)

DEFAULT_OUT = (pathlib.Path(__file__).parent / "results"
               / "serve_chaos")
VIRTUAL_NODES = 32


def chaos_function():
    """A small counted loop — a few milliseconds per request."""
    b = IRBuilder("chaos", n_params=1)
    n = b.param(0)
    i = b.ldi(0)
    iv = b.function.new_reg(i.rclass)
    b.copy_to(iv, i)
    acc = b.ldi(0)
    av = b.function.new_reg(acc.rclass)
    b.copy_to(av, acc)
    b.jmp("head")
    b.label("head")
    c = b.cmp_lt(iv, n)
    b.cbr(c, "body", "exit")
    b.label("body")
    b.copy_to(av, b.add(av, iv))
    b.copy_to(iv, b.addi(iv, 1))
    b.jmp("head")
    b.label("exit")
    b.out(av)
    b.ret()
    return b.finish()


def check(report: dict, name: str, ok: bool, detail: str = "") -> None:
    report["checks"].append({"name": name, "ok": bool(ok),
                             "detail": detail})
    marker = "ok" if ok else "FAIL"
    print(f"  [{marker}] {name}" + (f" — {detail}" if detail else ""))


def wait_until(predicate, timeout: float, what: str) -> bool:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            print(f"  timed out waiting for {what}")
            return False
        time.sleep(0.05)
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backends", type=int, default=2)
    parser.add_argument("--requests", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    out = pathlib.Path(args.out)
    if out.exists():
        shutil.rmtree(out)
    out.mkdir(parents=True)

    text = function_to_text(chaos_function())
    corpus = [{"ir_text": text, "int_regs": 4, "args": [n]}
              for n in range(args.requests)]
    keys = [request_key(request_from_json(s)) for s in corpus]

    # ground truth: fault-free, serial, uncached
    t0 = time.perf_counter()
    clean = ExperimentEngine(jobs=1, use_cache=False)
    expected = [dumps(summary_to_json(o))
                for o in clean.run_many([request_from_json(s)
                                         for s in corpus])]
    clean_s = time.perf_counter() - t0

    # one kill victim per backend, picked by the router's own ring so
    # every backend provably dies mid-request; one dropped and one
    # garbled reply among the survivors
    names = [f"b{i}" for i in range(args.backends)]
    ring = HashRing(names, virtual_nodes=VIRTUAL_NODES)
    by_primary: dict[str, list[int]] = {name: [] for name in names}
    for index, s in enumerate(corpus):
        by_primary[ring.primary(protocol.dumps(s))].append(index)
    if not all(by_primary.values()):
        print(f"corpus of {args.requests} left a backend idle; "
              "raise --requests")
        return 1
    kill_indices = [indices[0] for indices in by_primary.values()]
    survivors = [i for i in range(len(corpus))
                 if i not in kill_indices]
    drop_index, garble_index = survivors[0], survivors[1]

    plan = ServeFaultPlan(
        state_dir=str(out / "faults"),
        kill_keys=frozenset(keys[i] for i in kill_indices),
        drop_keys=frozenset({keys[drop_index]}),
        garble_keys=frozenset({keys[garble_index]}))
    plan_path = out / "plan.json"
    plan_path.write_text(json.dumps(plan.to_json(), indent=2) + "\n")

    report: dict = {
        "backends": args.backends,
        "requests": args.requests,
        "seed": args.seed,
        "plan": plan.describe(),
        "clean_serial_seconds": round(clean_s, 3),
        "checks": [],
    }
    print(f"serve chaos: {args.requests} requests over "
          f"{args.backends} backends, plan={plan.describe()}")

    cluster_config = ClusterConfig(
        backends=args.backends, jobs=1, cache_dir=out / "cache",
        serve_faults=plan_path,
        extra_args=("--batch-window", "0.001"))
    router_config = RouterConfig(
        virtual_nodes=VIRTUAL_NODES, ping_interval=0.05,
        ping_timeout=1.0, breaker_base=0.02, breaker_cap=0.5,
        failover_attempts=max(2, args.backends))

    t0 = time.perf_counter()
    with ClusterHarness(cluster_config, router_config) as cluster:
        client = ResilientClient("127.0.0.1", cluster.port,
                                 max_retries=12, backoff=0.05)
        with futures.ThreadPoolExecutor(args.clients) as pool:
            answers = list(pool.map(
                lambda s: dumps(client.allocate(**s)), corpus))
        chaos_s = time.perf_counter() - t0
        report["chaos_seconds"] = round(chaos_s, 3)
        print(f"fault-free serial: {clean_s:.2f}s; "
              f"chaos run: {chaos_s:.2f}s")

        mismatches = [f"request {i} differs"
                      for i, (got, want) in enumerate(zip(answers,
                                                          expected))
                      if got != want]
        check(report, "answers byte-identical to fault-free serial run",
              not mismatches, "; ".join(mismatches[:5]))
        check(report, f"{args.backends} backends killed mid-request, "
              "exactly once each",
              plan.claimed("kill") == args.backends,
              f"claimed {plan.claimed('kill')}")
        check(report, "one reply dropped, one garbled, exactly once",
              plan.claimed("drop") == 1 and plan.claimed("garble") == 1,
              f"drop={plan.claimed('drop')} "
              f"garble={plan.claimed('garble')}")

        check(report, "supervisor replaced every corpse",
              wait_until(lambda: cluster.supervisor.restarts
                         >= args.backends, 60.0, "restarts"),
              f"restarts={cluster.supervisor.restarts}")

        def healthy() -> int:
            with ServeClient("127.0.0.1", cluster.port,
                             timeout=10) as probe:
                return probe.call("ping").get("healthy", 0)

        check(report, "cluster recovered to full health",
              wait_until(lambda: healthy() >= args.backends, 60.0,
                         "full health"),
              f"healthy={healthy()}/{args.backends}")

        with ServeClient("127.0.0.1", cluster.port) as probe:
            counters = probe.metrics()["counters"]
            flight = probe.debug()
        report["router_counters"] = {
            name: counters.get(name, 0)
            for name in ("router.forwarded", "router.failovers",
                         "router.shed", "router.throttled",
                         "router.backend_restarts",
                         "router.failed_probes",
                         "router.backend_recoveries")}
        faults = args.backends + 2   # kills + drop + garble
        check(report, "every fault forced a failover",
              counters.get("router.failovers", 0) >= faults,
              f"failovers={counters.get('router.failovers', 0)}")
        check(report, "restarts visible in router counters",
              counters.get("router.backend_restarts", 0)
              >= args.backends,
              f"restarts={counters.get('router.backend_restarts', 0)}")

        again = [dumps(client.allocate(**s)) for s in corpus]
        check(report, "recovered cluster re-answers the whole corpus",
              again == expected)

    (out / "flight.json").write_text(json.dumps(flight, indent=2)
                                     + "\n")
    ok = all(c["ok"] for c in report["checks"])
    report["ok"] = ok
    (out / "report.json").write_text(json.dumps(report, indent=2)
                                     + "\n")
    print(f"report written to {out / 'report.json'}; "
          + ("ALL CHECKS PASSED" if ok else "RECONCILIATION FAILED"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
