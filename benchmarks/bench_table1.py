"""Benchmark + reproduction of Table 1 — *Effects of Rematerialization*.

``test_generate_table1`` regenerates the whole table (all kernels, both
allocators, huge-machine baseline) and saves it to
``benchmarks/results/table1.txt``; the shape assertions encode the
paper's qualitative claims.  The per-kernel benchmarks time the two
allocators on representative routines.
"""

import pytest

from repro.benchsuite import KERNELS_BY_NAME
from repro.experiments import generate_table1
from repro.ir import CountClass
from repro.machine import standard_machine
from repro.regalloc import allocate
from repro.remat import RenumberMode

from .conftest import save_result

#: representative routines for the per-allocation timing benchmarks
TIMED_KERNELS = ("fehl", "sgemm", "adapt", "twldrv")


@pytest.fixture(scope="module")
def table1(engine):
    return generate_table1(engine=engine)


def test_generate_table1(benchmark, table1, results_dir):
    """Regenerate Table 1 and check the paper's qualitative claims."""
    save_result(results_dir, "table1", table1.render())
    benchmark(table1.render)

    # the paper: improvements in 28 of 70 routines, degradations in 2;
    # our smaller suite must show the same shape — a majority of the
    # differing routines improve, with at least one degradation
    assert table1.n_improved >= 3
    assert 1 <= table1.n_degraded <= table1.n_improved
    # "many greater than 20%"
    big = [r for r in table1.differing if r.total_percent > 20]
    assert len(big) >= 2

    # "a pattern of fewer load instructions and more load-immediates":
    # summed over improving rows, the load contribution is positive and
    # the immediate (ldi+addi) contribution negative
    improving = [r for r in table1.rows if r.new_spill < r.old_spill]
    load_contrib = sum(r.contributions.get(CountClass.LOAD, 0)
                       for r in improving)
    imm_contrib = sum(r.contributions.get(CountClass.LDI, 0)
                      + r.contributions.get(CountClass.ADDI, 0)
                      for r in improving)
    assert load_contrib > 0
    assert imm_contrib < 0


def test_generate_table1_optimized(benchmark, engine, results_dir):
    """Table 1 over LVN/LICM/DCE-optimized code — closer to the paper's
    setting, where the allocator consumed an optimizer's output."""
    table = generate_table1(optimize_first=True, engine=engine)
    save_result(results_dir, "table1_optimized", table.render())
    benchmark(table.render)

    # optimization manufactures more multi-valued never-killed live
    # ranges, so at least as many routines differ as on naive code
    assert table.n_improved >= 5
    # and the Figure 1-shaped kernels still improve
    by_name = {r.kernel.name: r for r in table.rows}
    assert by_name["adapt"].total_percent > 20
    assert by_name["ptrsum"].total_percent > 10


@pytest.mark.parametrize("kernel_name", TIMED_KERNELS)
@pytest.mark.parametrize("mode", [RenumberMode.CHAITIN, RenumberMode.REMAT],
                         ids=["old", "new"])
def test_allocation_speed(benchmark, kernel_name, mode):
    """Allocator throughput on suite routines (Old vs New)."""
    kernel = KERNELS_BY_NAME[kernel_name]
    machine = standard_machine()
    benchmark(lambda: allocate(kernel.compile(), machine=machine,
                               mode=mode))
