"""Dump allocator quality stats for a kernel x mode x machine grid.

Usage::

    PYTHONPATH=src python benchmarks/run_allocator_sweep.py --out FILE

Runs every suite kernel under every renumber mode at several register
file sizes and writes one JSON object per configuration: the full
:class:`~repro.regalloc.AllocationStats`, the round count, and a sha256
of the allocated ILOC text.  Two dumps compare with ``--diff A B``.

This is the refactor safety net: 48 kernels x 3 modes x 3 machines =
432 configurations whose quality stats (and output bytes) must not move
when allocator internals are reorganized.  Pass ``--allocator ssa`` to
sweep the SSA spill-everywhere strategy instead (its own grid; not
comparable to the iterated one).
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json

from repro.ir import function_to_text
from repro.machine import machine_with
from repro.regalloc import allocate
from repro.remat import RenumberMode

KS = (6, 8, 16)


def sweep(allocator: str = "iterated") -> dict[str, dict]:
    from repro.benchsuite import ALL_KERNELS

    out: dict[str, dict] = {}
    for kernel in ALL_KERNELS:
        for mode in RenumberMode:
            for k in KS:
                fn = kernel.compile()
                # the default strategy is addressed by omission so this
                # harness can also replay dumps from older checkouts
                kwargs = {} if allocator == "iterated" \
                    else {"allocator": allocator}
                result = allocate(fn, machine=machine_with(k, k),
                                  mode=mode, **kwargs)
                text = function_to_text(result.function)
                key = f"{kernel.name}/{mode.value}/k{k}"
                out[key] = {
                    "stats": dataclasses.asdict(result.stats),
                    "rounds": result.rounds,
                    "sha256": hashlib.sha256(text.encode()).hexdigest(),
                }
    return out


def diff(a_path: str, b_path: str) -> int:
    with open(a_path) as ha, open(b_path) as hb:
        a, b = json.load(ha), json.load(hb)
    divergent = 0
    for key in sorted(set(a) | set(b)):
        if a.get(key) != b.get(key):
            divergent += 1
            print(f"DIVERGED {key}")
    print(f"{len(set(a) | set(b))} configs, {divergent} divergent")
    return 1 if divergent else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write the dump here")
    parser.add_argument("--allocator", default="iterated",
                        choices=["iterated", "ssa"])
    parser.add_argument("--diff", nargs=2, metavar=("A", "B"),
                        default=None, help="compare two dumps instead")
    args = parser.parse_args(argv)
    if args.diff:
        return diff(*args.diff)
    dump = sweep(args.allocator)
    text = json.dumps(dump, indent=0, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {len(dump)} configs to {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
