"""Record JSONL allocation traces for the FMM kernel suite.

Usage::

    PYTHONPATH=src python benchmarks/run_traced_suite.py [--k N] [--out DIR]

Allocates every FMM kernel with both the Old (Chaitin-scheme) and New
(rematerializing) allocator under a full event-capturing tracer and
writes one trace per (kernel, mode) to ``benchmarks/results/traces/``.
CI uploads the directory as an artifact, so any run's spill and
coalesce decisions can be inspected or diffed after the fact with
``repro trace <file.jsonl>`` (see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import pathlib

from repro.benchsuite import FMM_KERNELS
from repro.machine import machine_with
from repro.obs import Tracer, metrics_from_allocation, write_trace
from repro.regalloc import allocate
from repro.remat import RenumberMode

DEFAULT_OUT = pathlib.Path(__file__).parent / "results" / "traces"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--k", type=int, default=8,
                        help="register count per class (default 8)")
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help=f"output directory (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    machine = machine_with(args.k, args.k)

    for kernel in FMM_KERNELS:
        for mode in (RenumberMode.CHAITIN, RenumberMode.REMAT):
            tracer = Tracer(capture_events=True)
            result = allocate(kernel.compile(), machine=machine,
                              mode=mode, tracer=tracer)
            meta = {"function": result.function.name,
                    "mode": mode.value, "machine": machine.name,
                    "int_regs": machine.int_regs,
                    "float_regs": machine.float_regs,
                    "source": kernel.name}
            path = out / f"{kernel.name}_{mode.value}_k{args.k}.jsonl"
            write_trace(str(path), result.trace, meta,
                        metrics_from_allocation(result))
            print(f"{path.name}: rounds={result.rounds} "
                  f"spilled={result.stats.n_spilled_ranges} "
                  f"remat={result.stats.n_remat_spills} "
                  f"events={result.trace.n_events()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
