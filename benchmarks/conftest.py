"""Shared fixtures for the benchmark harness.

Every bench writes its rendered table into ``benchmarks/results/`` so the
artifacts survive the pytest run (and feed EXPERIMENTS.md).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.engine import ExperimentEngine

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def engine() -> ExperimentEngine:
    """The shared experiment engine for the whole bench suite: persistent
    content-hash cache under ``benchmarks/results/cache/``, fan-out
    across all cores.  Timing requests (Table 2) declare themselves
    non-cacheable, so sharing one engine is always safe."""
    return ExperimentEngine(cache_dir=RESULTS_DIR / "cache")


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
