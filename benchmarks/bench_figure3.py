"""Benchmark + reproduction of Figure 3 — *Introducing Splits*.

Checks the Minimal column (exactly one split isolating the never-killed
value) and times the renumber pipeline that produces it.
"""

import pytest

from repro.benchsuite import KERNELS_BY_NAME, figure1_function
from repro.regalloc import run_renumber
from repro.remat import RenumberMode, is_remat

from .conftest import save_result


def renumber_fresh(mode: RenumberMode):
    fn = figure1_function()
    fn.split_critical_edges()
    return fn, run_renumber(fn, mode)


def test_figure3_minimal_splits(benchmark, results_dir):
    fn, outcome = renumber_fresh(RenumberMode.REMAT)
    result = outcome.result
    splits = [inst for _b, inst in fn.instructions() if inst.is_split]
    lines = [
        "Figure 3 reproduction (split placement on the Figure 1 fragment)",
        "",
        f"live ranges: {len(result.live_ranges)}",
        f"splits inserted: {result.n_splits_inserted}",
        f"copies removed by renumber: {result.n_copies_removed}",
    ]
    for inst in splits:
        lines.append(f"  {inst}  (src tag {result.lr_tags[inst.src]!r}, "
                     f"dest tag {result.lr_tags[inst.dest]!r})")
    save_result(results_dir, "figure3", "\n".join(lines))

    # the Minimal column: one split, connecting inst -> bottom
    assert result.n_splits_inserted == 1
    (split,) = splits
    assert is_remat(result.lr_tags[split.src])
    assert not is_remat(result.lr_tags[split.dest])

    benchmark(lambda: renumber_fresh(RenumberMode.REMAT))


@pytest.mark.parametrize("mode", list(RenumberMode),
                         ids=lambda m: m.value)
def test_renumber_speed_on_large_routine(benchmark, mode):
    """Renumber throughput per mode on the big Table 2 specimen."""
    kernel = KERNELS_BY_NAME["twldrv"]

    def job():
        fn = kernel.compile()
        fn.split_critical_edges()
        return run_renumber(fn, mode)

    benchmark(job)
