"""The chaos suite: a planned-fault batch, reconciled end to end.

Usage::

    PYTHONPATH=src python benchmarks/run_chaos_suite.py [--jobs N]
        [--requests N] [--seed N] [--out DIR]

Builds a batch of allocation requests, injects a seeded fault plan
(~10% transient worker crashes, two hangs caught by the per-attempt
timeout, two poison requests) plus three on-disk cache corruptions, runs
the batch under the supervised engine, and reconciles:

* every non-poison request's summary is byte-identical to a fault-free
  serial run;
* every poison request comes back as a typed ``ExperimentFailure`` after
  exactly the configured retry budget;
* every ``engine.*`` fault counter matches the injected plan.

Writes ``report.json`` (plus the cache's ``quarantine/``) under
``benchmarks/results/chaos/``; CI uploads the directory as an artifact
and the exit status is nonzero when any reconciliation fails — see
``docs/robustness.md``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import pickle
import shutil
import time

from repro.engine import (ExperimentEngine, ExperimentFailure,
                          ExperimentRequest, FaultPlan, ResultCache,
                          SupervisorConfig, corrupt_cache_entry,
                          execute_request, request_key)
from repro.ir import IRBuilder, function_to_text
from repro.machine import machine_with

DEFAULT_OUT = pathlib.Path(__file__).parent / "results" / "chaos"

CRASH_FRACTION = 0.08   # transient crashes: ~10% of the batch with poison
HANGS = 2
POISON = 2
CORRUPTIONS = ("truncate", "flip", "bad_checksum")
MAX_ATTEMPTS = 3


def chaos_function():
    """A small counted loop — a few milliseconds per request."""
    b = IRBuilder("chaos", n_params=1)
    n = b.param(0)
    i = b.ldi(0)
    iv = b.function.new_reg(i.rclass)
    b.copy_to(iv, i)
    acc = b.ldi(0)
    av = b.function.new_reg(acc.rclass)
    b.copy_to(av, acc)
    b.jmp("head")
    b.label("head")
    c = b.cmp_lt(iv, n)
    b.cbr(c, "body", "exit")
    b.label("body")
    b.copy_to(av, b.add(av, iv))
    b.copy_to(iv, b.addi(iv, 1))
    b.jmp("head")
    b.label("exit")
    b.out(av)
    b.ret()
    return b.finish()


def build_requests(count: int) -> list[ExperimentRequest]:
    text = function_to_text(chaos_function())
    return [ExperimentRequest(ir_text=text, machine=machine_with(4, 4),
                              args=(n,)) for n in range(count)]


def check(report: dict, name: str, ok: bool, detail: str = "") -> None:
    report["checks"].append({"name": name, "ok": bool(ok),
                             "detail": detail})
    marker = "ok" if ok else "FAIL"
    print(f"  [{marker}] {name}" + (f" — {detail}" if detail else ""))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--timeout", type=float, default=2.0,
                        help="per-attempt timeout catching the hangs")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    args = parser.parse_args(argv)

    out = pathlib.Path(args.out)
    if out.exists():
        shutil.rmtree(out)
    cache_dir = out / "cache"
    cache_dir.mkdir(parents=True)

    requests = build_requests(args.requests)
    keys = [request_key(r) for r in requests]
    crashes = max(1, round(CRASH_FRACTION * args.requests))
    plan = FaultPlan.seeded(keys, seed=args.seed, crashes=crashes,
                            hangs=HANGS, poison=POISON, hang_seconds=60.0)

    print(f"chaos suite: {args.requests} requests, jobs={args.jobs}, "
          f"plan={plan.describe()}, {len(CORRUPTIONS)} cache corruptions")

    # ground truth: fault-free, serial, uncached
    t0 = time.perf_counter()
    clean = ExperimentEngine(jobs=1, use_cache=False)
    expected = {key: summary for key, summary
                in zip(keys, clean.run_many(requests))}
    clean_s = time.perf_counter() - t0

    # seed and damage the cache
    cache = ResultCache(cache_dir)
    for key, request, kind in zip(keys, requests, CORRUPTIONS):
        cache.put(key, execute_request(request))
        corrupt_cache_entry(cache, key, kind)

    engine = ExperimentEngine(
        jobs=args.jobs, cache_dir=cache_dir, fault_plan=plan,
        supervisor=SupervisorConfig(timeout=args.timeout,
                                    max_attempts=MAX_ATTEMPTS,
                                    backoff=0.02))
    t0 = time.perf_counter()
    outcomes = engine.run_many(requests)
    chaos_s = time.perf_counter() - t0

    report: dict = {
        "requests": args.requests,
        "jobs": args.jobs,
        "seed": args.seed,
        "plan": plan.describe(),
        "corruptions": list(CORRUPTIONS),
        "max_attempts": MAX_ATTEMPTS,
        "clean_serial_seconds": round(clean_s, 3),
        "chaos_seconds": round(chaos_s, 3),
        "checks": [],
    }
    print(f"fault-free serial: {clean_s:.2f}s; chaos run: {chaos_s:.2f}s")

    # -- survivors byte-identical, poison typed -----------------------------
    mismatches = []
    failures: list[ExperimentFailure] = []
    for key, outcome in zip(keys, outcomes):
        if key in plan.poison:
            if not (isinstance(outcome, ExperimentFailure)
                    and outcome.attempts == MAX_ATTEMPTS):
                mismatches.append(f"poison {key[:12]}: {outcome!r}")
            else:
                failures.append(outcome)
        elif isinstance(outcome, ExperimentFailure):
            mismatches.append(f"survivor failed {key[:12]}: "
                              + outcome.describe())
        elif pickle.dumps(outcome.without_timing()) \
                != pickle.dumps(expected[key].without_timing()):
            mismatches.append(f"bytes differ for {key[:12]}")
    check(report, "survivors byte-identical to fault-free serial run",
          not mismatches, "; ".join(mismatches[:5]))
    check(report, f"poison quarantined after exactly {MAX_ATTEMPTS} "
          f"attempts", len(failures) == POISON,
          f"{len(failures)}/{POISON}")
    report["failures"] = [f.describe() for f in failures]

    # -- counter reconciliation --------------------------------------------
    counters = engine.metrics().counters()
    expected_counters = {
        "engine.worker_crashes": crashes + POISON * MAX_ATTEMPTS,
        "engine.timeouts": HANGS,
        "engine.retries": crashes + HANGS + POISON * (MAX_ATTEMPTS - 1),
        "engine.quarantined": POISON,
        "engine.failed": POISON,
        "engine.cache_corrupt": len(CORRUPTIONS),
        "engine.cache_quarantined": len(CORRUPTIONS),
        "engine.cache_hits": 0,
        "engine.executed": args.requests - POISON,
        "engine.fallback_serial": 0,
    }
    report["expected_counters"] = expected_counters
    report["observed_counters"] = {k: counters.get(k, 0)
                                   for k in expected_counters}
    for name, want in expected_counters.items():
        check(report, f"{name} == {want}", counters.get(name, 0) == want,
              f"observed {counters.get(name, 0)}")

    quarantined = [p.name for p in cache.quarantined_entries()]
    check(report, "corrupt entries landed in quarantine/",
          len(quarantined) == len(CORRUPTIONS), ", ".join(quarantined))

    ok = all(c["ok"] for c in report["checks"])
    report["ok"] = ok
    (out / "report.json").write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {out / 'report.json'}; "
          + ("ALL CHECKS PASSED" if ok else "RECONCILIATION FAILED"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
