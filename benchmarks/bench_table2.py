"""Benchmark + reproduction of Table 2 — *Allocation Times in Seconds*.

Regenerates the per-phase timing table on the small/medium/large
specimens and checks the structural observations of Section 5.4.
"""

import pytest

from repro.benchsuite import KERNELS_BY_NAME
from repro.experiments import generate_table2
from repro.machine import machine_with
from repro.regalloc import allocate
from repro.remat import RenumberMode

from .conftest import save_result


@pytest.fixture(scope="module")
def table2(engine):
    return generate_table2(repeats=5, engine=engine)


def test_generate_table2(benchmark, table2, results_dir):
    save_result(results_dir, "table2", table2.render())
    benchmark(table2.render)

    for old, new in table2.columns:
        # Section 5.4: "the cost of renumber is higher for the New
        # allocator, reflecting the cost of propagating tags"
        assert (sum(r["renum"] for r in new.rounds)
                >= 0.8 * sum(r["renum"] for r in old.rounds))
        # "the very low costs of control-flow analysis"
        assert old.cfa < old.total * 0.25
        # the build-coalesce loop is a dominant phase in round 1
        first = old.rounds[0]
        assert first["build"] >= first["costs"]

    # the medium specimen iterates (the paper's tomcatv took an extra
    # round of spilling)
    tomcatv_old, _ = table2.columns[1]
    assert len(tomcatv_old.rounds) >= 2

    # specimens are ordered by size and total time grows with size
    sizes = [old.code_size for old, _ in table2.columns]
    assert sizes == sorted(sizes)


@pytest.mark.parametrize("routine", ("repvid", "tomcatv", "twldrv"))
def test_phase_timing_overhead(benchmark, routine):
    """End-to-end allocation time for each Table 2 specimen (New mode)."""
    kernel = KERNELS_BY_NAME[routine]
    machine = machine_with(8, 8)
    benchmark(lambda: allocate(kernel.compile(), machine=machine,
                               mode=RenumberMode.REMAT))
