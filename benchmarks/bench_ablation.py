"""Benchmark + reproduction of the Section 6 ablations.

The splitting-scheme sweep reproduces the paper's mixed verdict ("each
scheme had several major successes; each had several equally dramatic
failures") and the heuristic sweep quantifies conservative coalescing,
biased coloring and lookahead (Sections 4.2–4.3).
"""

import pytest

from repro.benchsuite import KERNELS_BY_NAME
from repro.experiments import run_ablation, run_heuristic_ablation
from repro.machine import machine_with
from repro.regalloc import allocate
from repro.regalloc.splitting import SCHEMES

from .conftest import save_result

#: a representative slice (the full suite works too but is slower)
ABLATION_KERNELS = [KERNELS_BY_NAME[n] for n in
                    ("fehl", "sgemm", "tomcatv", "adapt", "ptrsum",
                     "blend", "colbur", "heat1d", "bubble")]


@pytest.fixture(scope="module")
def scheme_results(engine):
    return run_ablation(kernels=ABLATION_KERNELS,
                        machine=machine_with(8, 8), engine=engine)


def test_splitting_schemes(benchmark, scheme_results, results_dir):
    save_result(results_dir, "ablation_schemes", scheme_results.render())

    # Section 6's verdict: relative to tag-driven splitting, each loop
    # scheme wins somewhere or loses somewhere — none dominates
    for scheme in ("around-all-loops", "around-outer-loops", "at-phis"):
        diffs = [per[scheme] - per["remat"]
                 for per in scheme_results.spill.values()]
        assert any(d != 0 for d in diffs), scheme
    # and maximal splitting is not uniformly better than remat
    at_phi_losses = sum(1 for per in scheme_results.spill.values()
                        if per["at-phis"] > per["remat"])
    assert at_phi_losses >= 1

    benchmark(scheme_results.render)


def test_heuristics(benchmark, engine, results_dir):
    result = run_heuristic_ablation(kernels=ABLATION_KERNELS,
                                    machine=machine_with(8, 8),
                                    engine=engine)
    save_result(results_dir, "ablation_heuristics", result.render())

    totals = {config: sum(per[config] for per in result.spill.values())
              for config in result.CONFIGS}
    # the full configuration should not be the worst of the four
    assert totals["full"] <= max(totals.values())
    benchmark(result.render)


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_scheme_allocation_speed(benchmark, scheme):
    """Allocation throughput per splitting scheme on one kernel."""
    s = SCHEMES[scheme]
    kernel = KERNELS_BY_NAME["tomcatv"]
    machine = machine_with(8, 8)
    benchmark(lambda: allocate(kernel.compile(), machine=machine,
                               mode=s.mode, pre_split=s.pre_split))
