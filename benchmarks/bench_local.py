"""Benchmark the local-allocator baseline against the coloring pipeline.

Quantifies the paper's closing Section 5.4 remark: graph coloring is not
competitive with "the fast, local techniques used in non-optimizing
compilers" in *compile time*, and decisively better in *code quality*.
"""

import pytest

from repro.benchsuite import ALL_KERNELS, KERNELS_BY_NAME
from repro.interp import run_function
from repro.machine import standard_machine
from repro.regalloc import allocate, allocate_local

from .conftest import save_result

MACHINE = standard_machine()


@pytest.fixture(scope="module")
def comparison():
    rows = []
    for kernel in ALL_KERNELS:
        local = allocate_local(kernel.compile(), machine=MACHINE)
        global_ = allocate(kernel.compile(), machine=MACHINE)
        run_l = run_function(local.function, args=list(kernel.args),
                             max_steps=5_000_000)
        run_g = run_function(global_.function, args=list(kernel.args))
        rows.append((kernel.name, MACHINE.cycles(run_l.counts),
                     MACHINE.cycles(run_g.counts),
                     local.total_time, global_.total_time))
    return rows


def test_local_vs_global(benchmark, comparison, results_dir):
    total_l = sum(r[1] for r in comparison)
    total_g = sum(r[2] for r in comparison)
    time_l = sum(r[3] for r in comparison)
    time_g = sum(r[4] for r in comparison)
    lines = [
        "Local (per-block write-through) vs global (coloring) allocation",
        "",
        f"suite dynamic cycles:   local {total_l:,}   "
        f"global {total_g:,}   (local {total_l / total_g:.1f}x slower "
        f"code)",
        f"suite allocation time:  local {time_l * 1000:.0f} ms   "
        f"global {time_g * 1000:.0f} ms   (local "
        f"{time_g / max(time_l, 1e-9):.0f}x faster to allocate)",
    ]
    save_result(results_dir, "local_vs_global", "\n".join(lines))

    # the paper's trade-off, both directions
    assert total_l > 2 * total_g
    assert time_l < time_g

    kernel = KERNELS_BY_NAME["sgemm"]
    benchmark(lambda: allocate_local(kernel.compile(), machine=MACHINE))


def test_global_allocation_speed_baseline(benchmark):
    kernel = KERNELS_BY_NAME["sgemm"]
    benchmark(lambda: allocate(kernel.compile(), machine=MACHINE))
