"""Run the whole kernel suite with the IR verifier between every pass.

Usage::

    PYTHONPATH=src python benchmarks/run_verified_suite.py [--k N]

Optimizes every kernel with ``optimize(verify_after_each=True)`` and
allocates it under all three renumber modes with
``allocate(verify_rounds=True)``, so the verifier checks the function
after every pipeline pass and after every mutating allocator phase
(pre-split, renumber, spill insertion).  Any invariant a transform
breaks — dangling labels, uses of undefined registers, φs escaping
renumber — fails the run at the phase that broke it instead of
surfacing as a miscompile later.  CI runs this on every push.

With ``--verify-incremental`` every incremental analysis patch inside
the allocator — the coalesce loop's graph refreshes and the
spill-delta liveness updates — is additionally cross-checked against a
from-scratch recomputation (``diff_graphs`` / ``diff_liveness``) and
the run fails on the first divergence.

With ``--allocator ssa`` the suite runs under the SSA
spill-everywhere strategy instead; the strategy has no mode axis
(maximal splitting *is* the strategy), so each kernel is allocated
once per register count rather than once per renumber mode.
"""

from __future__ import annotations

import argparse

from repro.machine import machine_with
from repro.opt import optimize
from repro.regalloc import ALLOCATOR_NAMES, allocate
from repro.remat import RenumberMode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--k", type=int, default=8,
                        help="register count per class (default 8)")
    parser.add_argument("--allocator", choices=list(ALLOCATOR_NAMES),
                        default="iterated",
                        help="allocation strategy (default iterated)")
    parser.add_argument("--verify-incremental", action="store_true",
                        help="cross-check every incremental analysis "
                             "patch against a from-scratch recompute")
    args = parser.parse_args(argv)

    from repro.benchsuite import ALL_KERNELS

    machine = machine_with(args.k, args.k)
    # the SSA strategy ignores the renumber mode — running all three
    # would just verify the same allocation three times
    modes = (list(RenumberMode) if args.allocator == "iterated"
             else [RenumberMode.REMAT])
    n_allocations = 0
    for kernel in ALL_KERNELS:
        fn = kernel.compile()
        optimize(fn, verify_after_each=True)
        line = [f"{kernel.name:>10}:"]
        for mode in modes:
            result = allocate(fn, machine=machine, mode=mode,
                              allocator=args.allocator,
                              verify_rounds=True,
                              verify_incremental=args.verify_incremental)
            n_allocations += 1
            line.append(f"{mode.value}={result.rounds}r/"
                        f"{result.stats.n_spilled_ranges}s")
        print(" ".join(line))
    print(f"verified {n_allocations} allocations on {machine.name} "
          f"({len(ALL_KERNELS)} kernels x {len(modes)} modes, "
          f"allocator={args.allocator})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
