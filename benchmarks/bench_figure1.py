"""Benchmark + reproduction of Figure 1 — *Rematerialization versus
Spilling*.

Asserts the figure's qualitative content on the pressured fragment: under
the New allocator the constant part of ``p`` is rematerialized
(immediates replace loads, stores vanish for that range) and the result
is strictly cheaper than Chaitin-style spilling.
"""

import pytest

from repro.benchsuite import figure1_pressured
from repro.interp import run_function
from repro.ir import CountClass
from repro.machine import machine_with
from repro.regalloc import allocate
from repro.remat import RenumberMode

from .conftest import save_result

MACHINE = machine_with(4, 2)
ARGS = [12]


@pytest.fixture(scope="module")
def runs():
    fn = figure1_pressured()
    expected = run_function(fn.clone(), args=ARGS).output
    result = {}
    for mode in (RenumberMode.CHAITIN, RenumberMode.REMAT):
        allocated = allocate(fn, machine=MACHINE, mode=mode)
        run = run_function(allocated.function, args=ARGS)
        assert run.output == expected
        result[mode] = (allocated, run)
    return result


def test_figure1_shape(benchmark, runs, results_dir):
    old_alloc, old_run = runs[RenumberMode.CHAITIN]
    new_alloc, new_run = runs[RenumberMode.REMAT]

    old_cycles = MACHINE.cycles(old_run.counts)
    new_cycles = MACHINE.cycles(new_run.counts)
    lines = [
        "Figure 1 reproduction (pressured fragment, 4+2 registers)",
        "",
        f"{'':12s}{'cycles':>8}{'loads':>7}{'stores':>8}{'ldi':>6}"
        f"{'addi':>6}{'copies':>8}",
        f"{'Chaitin':12s}{old_cycles:>8}"
        f"{old_run.count(CountClass.LOAD):>7}"
        f"{old_run.count(CountClass.STORE):>8}"
        f"{old_run.count(CountClass.LDI):>6}"
        f"{old_run.count(CountClass.ADDI):>6}"
        f"{old_run.count(CountClass.COPY):>8}",
        f"{'Remat':12s}{new_cycles:>8}"
        f"{new_run.count(CountClass.LOAD):>7}"
        f"{new_run.count(CountClass.STORE):>8}"
        f"{new_run.count(CountClass.LDI):>6}"
        f"{new_run.count(CountClass.ADDI):>6}"
        f"{new_run.count(CountClass.COPY):>8}",
    ]
    save_result(results_dir, "figure1", "\n".join(lines))

    # the Ideal-vs-Chaitin contrast of the figure
    assert new_cycles < old_cycles
    assert new_run.count(CountClass.LOAD) < old_run.count(CountClass.LOAD)
    assert (new_run.count(CountClass.LDI) + new_run.count(CountClass.ADDI)
            >= old_run.count(CountClass.LDI)
            + old_run.count(CountClass.ADDI))
    # the New allocator rematerialized at least one spilled range
    assert new_alloc.stats.n_remat_spills >= 1
    assert new_alloc.stats.n_splits_inserted >= 1

    fn = figure1_pressured()
    benchmark(lambda: allocate(fn, machine=MACHINE,
                               mode=RenumberMode.REMAT))


def test_figure1_old_allocation_speed(benchmark):
    fn = figure1_pressured()
    benchmark(lambda: allocate(fn, machine=MACHINE,
                               mode=RenumberMode.CHAITIN))
