"""Benchmark + the register-set variation sweep.

Section 5 emphasizes that the experimental harness can retarget the
register file from a small table; this sweep exercises that capability
and shows where rematerialization's advantage lives: it grows as the file
shrinks toward the point where multi-valued constants become the marginal
spill victims, and vanishes once nothing spills.
"""

import pytest

from repro.experiments import run_register_sweep

from .conftest import save_result


@pytest.fixture(scope="module")
def sweep(engine):
    return run_register_sweep(engine=engine)


def test_register_sweep(benchmark, sweep, results_dir):
    save_result(results_dir, "register_sweep", sweep.render())

    points = {p.k: p for p in sweep.points}
    # monotone pressure: fewer registers, more spill cycles
    olds = [p.old_spill for p in sweep.points]
    assert olds == sorted(olds, reverse=True)
    # the band where rematerialization pays: New never loses in total,
    # and wins clearly at the paper's 16-register point
    assert points[16].new_spill < points[16].old_spill
    assert points[16].improvement_percent > 20
    # ample registers: nothing (or nearly nothing) spills
    assert points[24].old_spill == 0

    benchmark(sweep.render)
