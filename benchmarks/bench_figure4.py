"""Benchmark + reproduction of Figure 4 — *ILOC and C*.

Checks that the translation has the figure's one-statement-per-
instruction shape with class counters, and times emission over the suite.
"""

import pytest

from repro.benchsuite import ALL_KERNELS, KERNELS_BY_NAME
from repro.cgen import emit_function
from repro.ir import parse_function

from .conftest import save_result

FIGURE4_ILOC = """proc sample 0
entry:
    ldi r14 8
    add r9 r15 r11
    fcopy f15 f0
    jmp L0023
L0023:
    fldo f14 r14 0
    fabs f14 f14
    fadd f15 f15 f14
    addi r14 r14 8
    sub r7 r10 r14
    cbr r7 L0023 done
done:
    ret
"""


def test_figure4_translation_shape(benchmark, results_dir):
    fn = parse_function(FIGURE4_ILOC)
    fn.reserve_regs(20)
    text = emit_function(fn)
    save_result(results_dir, "figure4", text)

    # Figure 4's pattern: counter bumps per class appear on the right lines
    assert "r14v = (long) (8); i++;" in text
    assert "f15v = f0v; c++;" in text
    assert "f14v = fabs(f14v); o++;" in text
    assert "r14v = r14v + (8); a++;" in text
    assert "l++;" in text                      # the fldo load
    assert "goto L0023;" in text

    benchmark(lambda: emit_function(fn))


def test_figure4_emission_speed_suite(benchmark):
    """C emission throughput across the whole kernel suite."""
    functions = [k.compile() for k in ALL_KERNELS]

    def job():
        return sum(len(emit_function(fn)) for fn in functions)

    total = benchmark(job)
    assert total > 10_000


def test_figure4_roundtrip_after_allocation(benchmark):
    from repro.machine import standard_machine
    from repro.regalloc import allocate
    kernel = KERNELS_BY_NAME["tomcatv"]
    allocated = allocate(kernel.compile(), machine=standard_machine())
    text = emit_function(allocated.function)
    assert "register long" in text
    benchmark(lambda: emit_function(allocated.function))
