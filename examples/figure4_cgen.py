#!/usr/bin/env python3
"""Figure 4 — ILOC and C.

The paper translates allocated ILOC to instrumented C and runs it natively
to collect dynamic counts.  This reproduction counts with an interpreter
instead (same numbers by construction), but the translation itself is
reproduced here: one C statement per ILOC instruction with a counter bump
per class (``l++``, ``s++``, ``c++``, ``i++``, ``a++``), exactly like the
figure.
"""

from repro import allocate, function_to_text, parse_function, \
    standard_machine
from repro.cgen import emit_function

#: a fragment shaped like Figure 4's sample (a sum-of-absolute-values loop)
ILOC = """proc figure4 1
entry:
    param r10 0
    ldi r14 8
    ldi r9 256
    ldf f15 0.0
    jmp L0023
L0023:
    add r7 r14 r9
    fldo f14 r7 0
    fabs f14 f14
    fadd f15 f15 f14
    addi r14 r14 8
    sub r7 r10 r14
    cmp_ge r8 r7 r14
    cbr r8 L0023 done
done:
    fout f15
    ret
"""


def main() -> None:
    print(__doc__)
    fn = parse_function(ILOC)
    print("=== ILOC ===")
    print(function_to_text(fn))
    print("=== instrumented C (virtual registers) ===")
    print(emit_function(fn))

    result = allocate(fn, machine=standard_machine())
    print("=== instrumented C (after allocation) ===")
    print(emit_function(result.function))


if __name__ == "__main__":
    main()
