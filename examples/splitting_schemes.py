#!/usr/bin/env python3
"""Section 6 — alternative splitting schemes, side by side.

Runs one kernel under the paper's five experimental splitting schemes
plus the two baselines, reporting dynamic spill cycles for each.  The
mixed outcome ("each scheme had several major successes; each had
several equally dramatic failures") shows up even on a single kernel
when the register file is varied.
"""

from repro import CountClass, allocate, machine_with, run_function
from repro.benchsuite import KERNELS_BY_NAME
from repro.experiments import measure_baseline
from repro.regalloc.splitting import SCHEMES

KERNEL = KERNELS_BY_NAME["adapt"]


def main() -> None:
    print(__doc__)
    for k in (8, 12, 16):
        machine = machine_with(k, k)
        baseline = measure_baseline(KERNEL, cost_machine=machine)
        print(f"--- {KERNEL.name} on a {k}+{k}-register machine "
              f"(spill cycles; lower is better)")
        for name, scheme in SCHEMES.items():
            result = allocate(KERNEL.compile(), machine=machine,
                              mode=scheme.mode, pre_split=scheme.pre_split)
            run = run_function(result.function, args=list(KERNEL.args))
            spill = machine.cycles(run.counts) - baseline.total_cycles
            print(f"  {name:22s} {spill:6d}   "
                  f"(splits inserted {result.stats.n_splits_inserted:3d}, "
                  f"coalesced back {result.stats.n_splits_coalesced:3d}, "
                  f"copies executed "
                  f"{run.count(CountClass.COPY):4d})")
        print()


if __name__ == "__main__":
    main()
