#!/usr/bin/env python3
"""Figure 3 — Introducing Splits.

Walks the paper's example through renumber's internals:

* the pruned SSA form (values and φ-nodes),
* the rematerialization tags after sparse propagation
  (⊤ / inst / ⊥ of Section 3.2),
* the *Minimal* split placement — exactly one split copy isolating the
  never-killed ``p0`` from the ⊥ web ``p12``.
"""

from repro import RenumberMode, function_to_text
from repro.benchsuite import figure1_function
from repro.remat import apply_plan, plan_unions, propagate_tags
from repro.ssa import SSAGraph, construct_ssa


def main() -> None:
    print(__doc__)
    fn = figure1_function()
    print("=== Source column ===")
    print(function_to_text(fn))

    fn.split_critical_edges()
    info = construct_ssa(fn)
    print("=== SSA column (values and φ-nodes) ===")
    print(function_to_text(fn))

    graph = SSAGraph.build(fn, info)
    tags = propagate_tags(graph)
    print("=== rematerialization tags after propagation ===")
    for value in sorted(tags, key=lambda r: r.index):
        site = info.def_site[value]
        print(f"  {value}  defined in {site[0]:8s} by '{site[1]}'  "
              f"tag = {tags[value]!r}")

    plan = plan_unions(fn, info, tags, RenumberMode.REMAT)
    print(f"\nplanned splits: {len(plan.splits)} "
          f"(the Minimal column needs exactly one)")
    for pred, result, operand in plan.splits:
        print(f"  split in {pred}: {result} <- {operand} "
              f"(tags {tags[result]!r} vs {tags[operand]!r})")

    result = apply_plan(fn, info, plan, tags)
    print("\n=== Minimal column (after renumber) ===")
    print(function_to_text(fn))
    print(f"live ranges: {len(result.live_ranges)}, "
          f"splits inserted: {result.n_splits_inserted}, "
          f"copies removed: {result.n_copies_removed}")


if __name__ == "__main__":
    main()
