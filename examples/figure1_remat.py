#!/usr/bin/env python3
"""Figure 1 — Rematerialization versus Spilling.

The paper's running example: a pointer ``p`` holds an address constant
through the first loop and is incremented through the second.  Under
register pressure, Chaitin's allocator spills the whole live range
(stores + reloads); the tagged allocator rematerializes the constant part
with an address-immediate (``lsd``) and memory-spills only the varying
part — the figure's *Ideal* column.
"""

from repro import (CountClass, RenumberMode, allocate, function_to_text,
                   machine_with, run_function)
from repro.benchsuite import figure1_pressured

ARGS = [12]
MACHINE = machine_with(4, 2)   # force p to spill


def show(mode: RenumberMode) -> int:
    fn = figure1_pressured()
    result = allocate(fn, machine=MACHINE, mode=mode)
    run = run_function(result.function, args=ARGS)
    title = ("Chaitin-style (Old)" if mode is RenumberMode.CHAITIN
             else "Rematerializing (New)")
    print(f"===== {title} =====")
    print(function_to_text(result.function))
    print(f"output:  {run.output}")
    print(f"dynamic: loads={run.count(CountClass.LOAD)} "
          f"stores={run.count(CountClass.STORE)} "
          f"copies={run.count(CountClass.COPY)} "
          f"ldi={run.count(CountClass.LDI)} "
          f"addi={run.count(CountClass.ADDI)} "
          f"total steps={run.steps}")
    cycles = MACHINE.cycles(run.counts)
    print(f"cycles under the paper's model: {cycles}")
    print()
    return cycles


def main() -> None:
    print(__doc__)
    print("Source (before allocation):")
    print(function_to_text(figure1_pressured()))
    old = show(RenumberMode.CHAITIN)
    new = show(RenumberMode.REMAT)
    print(f"New vs Old: {old} -> {new} cycles "
          f"({100 * (old - new) / old:.0f}% cheaper — the paper's "
          f"pattern of fewer loads and more immediates)")


if __name__ == "__main__":
    main()
