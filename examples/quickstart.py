#!/usr/bin/env python3
"""Quickstart: compile, allocate and run a small routine.

The pipeline is the paper's Figure 2: renumber -> build/coalesce ->
spill costs -> simplify -> select (-> spill code, repeated if needed),
with rematerialization tags driving the splitting and spill decisions.
"""

from repro import (RenumberMode, allocate, compile_source, function_to_text,
                   run_function, standard_machine, tiny_machine)

SOURCE = """
proc average(n) {
  int i;
  float sum;
  array float data[64];
  for i = 0 to n {
    data[i] = float(i) * 1.5;
  }
  sum = 0.0;
  for i = 0 to n {
    sum = sum + data[i];
  }
  out(sum / float(n));
}
"""


def main() -> None:
    fn = compile_source(SOURCE)
    print("=== ILOC before allocation (unlimited virtual registers) ===")
    print(function_to_text(fn))

    before = run_function(fn.clone(), args=[10])
    print(f"output: {before.output}, dynamic instructions: {before.steps}")

    # allocate for the paper's standard machine: 16 int + 16 float regs
    result = allocate(fn, machine=standard_machine(),
                      mode=RenumberMode.REMAT)
    print("\n=== after allocation (physical registers only) ===")
    print(function_to_text(result.function))

    after = run_function(result.function, args=[10])
    assert after.output == before.output
    print(f"output unchanged: {after.output}")
    print(f"rounds: {result.rounds}, "
          f"spilled live ranges: {result.stats.n_spilled_ranges}")

    # squeeze it onto a tiny machine to watch spill code appear
    squeezed = allocate(fn, machine=tiny_machine(4, 2),
                        mode=RenumberMode.REMAT)
    tight = run_function(squeezed.function, args=[10])
    assert tight.output == before.output
    print(f"\non a 4+2-register machine: rounds={squeezed.rounds}, "
          f"spilled={squeezed.stats.n_spilled_ranges} "
          f"(rematerialized: {squeezed.stats.n_remat_spills}), "
          f"dynamic instructions {before.steps} -> {tight.steps}")


if __name__ == "__main__":
    main()
