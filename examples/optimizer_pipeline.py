#!/usr/bin/env python3
"""The pre-allocation optimizer (LVN -> LICM -> DCE) and its effect.

The paper's allocator consumed the output of an optimizing compiler;
MiniFort's naive code generator recomputes array addresses and constants
at every occurrence.  This example shows the pipeline cleaning up a
kernel and how that changes what the allocator sees.
"""

from repro import (RenumberMode, allocate, function_to_text, run_function,
                   standard_machine)
from repro.benchsuite import KERNELS_BY_NAME
from repro.opt import optimize

KERNEL = KERNELS_BY_NAME["sgemm"]


def describe(fn, label):
    run = run_function(fn.clone(), args=list(KERNEL.args))
    print(f"{label}: {fn.size()} static instructions, "
          f"{run.steps} executed")
    return run


def main() -> None:
    print(__doc__)
    fn = KERNEL.compile()
    before = describe(fn, "naive code        ")

    stats = optimize(fn)
    after = describe(fn, "after LVN/LICM/DCE")
    assert after.output == before.output
    print(f"\npasses: {stats.lvn_replaced} recomputations value-numbered, "
          f"{stats.licm_hoisted} instructions hoisted, "
          f"{stats.dce_removed} dead instructions removed "
          f"({stats.rounds} rounds)")

    machine = standard_machine()
    for mode in (RenumberMode.CHAITIN, RenumberMode.REMAT):
        result = allocate(fn, machine=machine, mode=mode)
        run = run_function(result.function, args=list(KERNEL.args))
        assert run.output == before.output
        print(f"allocated ({mode.value:8s}): {run.steps} executed, "
              f"{machine.cycles(run.counts)} cycles, "
              f"{result.stats.n_spilled_ranges} ranges spilled")


if __name__ == "__main__":
    main()
