#!/usr/bin/env python3
"""Regenerate the paper's tables from the command line.

Usage::

    python examples/run_experiments.py            # Table 1 + Table 2
    python examples/run_experiments.py --ablation # + Section 6 ablation

Table 1 runs the whole kernel suite under both allocators with the
huge-machine baseline methodology; Table 2 times the allocator phases on
the small/medium/large specimens.  The ablation sweep takes a while.
"""

import argparse

from repro.experiments import (generate_table1, generate_table2,
                               run_ablation, run_heuristic_ablation)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ablation", action="store_true",
                        help="also run the Section 6 splitting-scheme and "
                             "heuristic ablations")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions for Table 2")
    args = parser.parse_args()

    print(generate_table1().render())
    print()
    print(generate_table2(repeats=args.repeats).render())
    if args.ablation:
        print()
        print(run_ablation().render())
        print()
        print(run_heuristic_ablation().render())


if __name__ == "__main__":
    main()
