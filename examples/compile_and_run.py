#!/usr/bin/env python3
"""The full pipeline on a realistic kernel: MiniFort source -> ILOC ->
three allocators -> instrumented execution, comparing dynamic costs.

Uses the suite's ``adapt`` kernel (a sweep whose scale and time step are
constants through the hot loop and are adapted afterwards — the Figure 1
live-range shape), reproducing in miniature what the Table 1 harness does
for the whole suite.  The Section 6 maximal-splitting allocator is thrown
in for comparison.
"""

from repro import CountClass, RenumberMode, allocate, run_function, \
    standard_machine
from repro.benchsuite import KERNELS_BY_NAME

KERNEL = KERNELS_BY_NAME["adapt"]
MACHINE = standard_machine()


def main() -> None:
    print("MiniFort source:")
    print(KERNEL.source)
    fn = KERNEL.compile()
    args = list(KERNEL.args)
    reference = run_function(fn.clone(), args=args)
    print(f"reference output: {reference.output} "
          f"({reference.steps} virtual-register instructions)")
    print(f"\n{'allocator':<12} {'cycles':>7} {'loads':>6} {'stores':>7} "
          f"{'ldi':>5} {'addi':>6} {'copies':>7} {'rounds':>7}")
    for mode in RenumberMode:
        result = allocate(fn, machine=MACHINE, mode=mode)
        run = run_function(result.function, args=args)
        assert run.output == reference.output, mode
        print(f"{mode.value:<12} {MACHINE.cycles(run.counts):>7} "
              f"{run.count(CountClass.LOAD):>6} "
              f"{run.count(CountClass.STORE):>7} "
              f"{run.count(CountClass.LDI):>5} "
              f"{run.count(CountClass.ADDI):>6} "
              f"{run.count(CountClass.COPY):>7} "
              f"{result.rounds:>7}")
    print("\n(the 'remat' row trades loads and stores for immediates — "
          "the paper's Table 1 pattern)")


if __name__ == "__main__":
    main()
